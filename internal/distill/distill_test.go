package distill

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/data"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/tensor"
)

func clientSet(t *testing.T, perClass int, seed int64) *data.Dataset {
	t.Helper()
	spec := data.MNISTLike(8, perClass)
	train, _ := data.Generate(spec, seed)
	return train
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Scale: 0, Steps: 1, LR: 0.1, RealBatch: 1, Eps: 1e-6},
		{Scale: 10, Steps: 0, LR: 0.1, RealBatch: 1, Eps: 1e-6},
		{Scale: 10, Steps: 1, LR: 0, RealBatch: 1, Eps: 1e-6},
		{Scale: 10, Steps: 1, LR: 0.1, RealBatch: 0, Eps: 1e-6},
		{Scale: 10, Steps: 1, LR: 0.1, RealBatch: 1, Eps: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid", i)
		}
	}
}

// Property: |S_ic| = ⌈|D_ic|/s⌉ — the paper's sizing invariant, including
// the at-least-one-sample-per-held-class guarantee.
func TestInitSyntheticSizing(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		scale := float64(1 + r.Intn(200))
		client := clientSet(t, 1+r.Intn(20), seed)
		cfg := DefaultConfig()
		cfg.Scale = scale
		syn := InitSynthetic(client, cfg, r)
		realCounts := client.ClassCounts()
		synCounts := syn.ClassCounts()
		for c := range realCounts {
			if realCounts[c] == 0 {
				if synCounts[c] != 0 {
					return false
				}
				continue
			}
			want := (realCounts[c] + int(scale) - 1) / int(scale)
			if synCounts[c] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestInitSyntheticClones(t *testing.T) {
	client := clientSet(t, 4, 1)
	cfg := DefaultConfig()
	cfg.Scale = 2
	syn := InitSynthetic(client, cfg, rand.New(rand.NewSource(2)))
	// Mutating synthetic samples must not touch the originals.
	for _, x := range syn.X {
		x.ScaleInPlace(0)
	}
	nonzero := false
	for _, x := range client.X {
		if x.Norm() > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("InitSynthetic must clone, not alias, real samples")
	}
}

func TestInitSyntheticNoise(t *testing.T) {
	client := clientSet(t, 4, 3)
	cfg := DefaultConfig()
	cfg.Scale = 2
	cfg.NoiseInit = true
	syn := InitSynthetic(client, cfg, rand.New(rand.NewSource(4)))
	if syn.Len() == 0 {
		t.Fatal("empty synthetic set")
	}
	// Noise init should not coincide with any real sample.
	for _, s := range syn.X {
		for _, x := range client.X {
			if s.Sub(x).Norm() < 1e-9 {
				t.Fatal("noise init equals a real sample")
			}
		}
	}
}

func TestMatchDistanceIdenticalGradsNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := []*ad.Value{
		ad.Const(tensor.Randn(rng, 1, 6, 4)),
		ad.Const(tensor.Randn(rng, 1, 4)),
	}
	d := MatchDistance(g, g, 1e-6).Item()
	if d < 0 || d > 1e-3 {
		t.Fatalf("distance of identical grads = %g, want ≈0", d)
	}
}

func TestMatchDistanceOppositeGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := tensor.Randn(rng, 1, 5, 3)
	gS := []*ad.Value{ad.Const(a)}
	gD := []*ad.Value{ad.Const(a.Neg())}
	d := MatchDistance(gS, gD, 1e-6).Item()
	// Each of the 3 column groups contributes 1 − (−1) = 2.
	if math.Abs(d-6) > 1e-3 {
		t.Fatalf("distance of opposite grads = %g, want ≈6", d)
	}
}

func TestMatchDistanceScaleInvariantPerGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := tensor.Randn(rng, 1, 5, 2)
	d1 := MatchDistance([]*ad.Value{ad.Const(a)}, []*ad.Value{ad.Const(a.Scale(7))}, 1e-9).Item()
	if d1 > 1e-6 {
		t.Fatalf("cosine distance must be scale invariant, got %g", d1)
	}
}

func TestMatchDistanceGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := tensor.Randn(rng, 1, 4, 3)
	d := tensor.Randn(rng, 1, 4, 3)
	err := ad.CheckGradient(func(xs []*ad.Value) *ad.Value {
		return MatchDistance([]*ad.Value{xs[0]}, []*ad.Value{ad.Const(d)}, 1e-6)
	}, []*tensor.Tensor{s}, 1e-6, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
}

func TestL2DistanceZeroAndGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := tensor.Randn(rng, 1, 3, 2)
	if d := L2Distance([]*ad.Value{ad.Const(a)}, []*ad.Value{ad.Const(a)}, 0).Item(); d != 0 {
		t.Fatalf("L2 self distance = %g", d)
	}
	b := tensor.Randn(rng, 1, 3, 2)
	err := ad.CheckGradient(func(xs []*ad.Value) *ad.Value {
		return L2Distance([]*ad.Value{xs[0]}, []*ad.Value{ad.Const(b)}, 0)
	}, []*tensor.Tensor{a}, 1e-6, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
}

// The core mechanism: a matching step must reduce the gradient distance
// between synthetic and real data.
func TestMatchStepReducesDistance(t *testing.T) {
	client := clientSet(t, 10, 10)
	cfg := DefaultConfig()
	cfg.Scale = 5
	cfg.LR = 0.5
	cfg.Steps = 1
	rng := rand.New(rand.NewSource(11))
	matcher := NewMatcher(cfg, data.NewCohort([]*data.Dataset{client}), rng)
	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 4, Depth: 1}
	model := nn.NewConvNet(arch, rng)

	dist := func() float64 {
		// Full-data gradient distance, class-wise averaged.
		syn := matcher.Sets[0]
		total := 0.0
		for c := 0; c < 10; c++ {
			realSub, synSub := client.OfClass(c), syn.OfClass(c)
			if realSub.Len() == 0 || synSub.Len() == 0 {
				continue
			}
			gD := classGrads(model, realSub)
			gS := classGrads(model, synSub)
			total += MatchDistance(gS, gD, cfg.Eps).Item()
		}
		return total
	}

	before := dist()
	ctx := fl.StepContext{Model: model, Client: client, Rng: rng, ClientID: 0}
	for i := 0; i < 5; i++ {
		matcher.MatchStep(ctx)
	}
	after := dist()
	if after >= before {
		t.Fatalf("matching did not reduce distance: %.4f → %.4f", before, after)
	}
	if matcher.DDTime <= 0 {
		t.Fatal("DDTime must accumulate")
	}
	if matcher.Counter.GradEvals == 0 {
		t.Fatal("Counter must accumulate")
	}
}

func classGrads(model *nn.Model, ds *data.Dataset) []*ad.Value {
	x, labels := ds.All()
	bound := model.Bind()
	loss := nn.CrossEntropy(bound.Forward(ad.Const(x)), nn.OneHot(labels, model.Classes))
	gs := ad.MustGrad(loss, bound.ParamVars())
	out := make([]*ad.Value, len(gs))
	for i, g := range gs {
		out[i] = ad.Detach(g)
	}
	return out
}

func TestMatcherSkipsEmptyClients(t *testing.T) {
	client := clientSet(t, 2, 12)
	rng := rand.New(rand.NewSource(13))
	matcher := NewMatcher(DefaultConfig(), data.NewCohort([]*data.Dataset{client, nil, data.NewDataset(8, 8, 1, 10)}), rng)
	if len(matcher.Sets) != 1 {
		t.Fatalf("expected 1 synthetic set, got %d", len(matcher.Sets))
	}
	// Hook on a client without a set must be a no-op.
	matcher.Hook()(fl.StepContext{ClientID: 5, Client: client, Rng: rng})
}

func TestStorageOverhead(t *testing.T) {
	client := clientSet(t, 20, 14) // 200 samples
	cfg := DefaultConfig()
	cfg.Scale = 10
	matcher := NewMatcher(cfg, data.NewCohort([]*data.Dataset{client}), rand.New(rand.NewSource(15)))
	// 2 synthetic per class × 10 classes = 20 → overhead 0.1.
	got := matcher.StorageOverhead(data.NewCohort([]*data.Dataset{client}))
	if math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("storage overhead = %g, want 0.1", got)
	}
}

func TestAugmentDoublesPerClass(t *testing.T) {
	client := clientSet(t, 10, 16)
	cfg := DefaultConfig()
	cfg.Scale = 5 // 2 synthetic per class
	rng := rand.New(rand.NewSource(17))
	syn := InitSynthetic(client, cfg, rng)
	aug := Augment(syn, client, rng)
	if aug.Len() != 2*syn.Len() {
		t.Fatalf("augmented size %d, want %d", aug.Len(), 2*syn.Len())
	}
	sc, ac := syn.ClassCounts(), aug.ClassCounts()
	for c := range sc {
		if ac[c] != 2*sc[c] {
			t.Fatalf("class %d: %d vs %d", c, ac[c], sc[c])
		}
	}
}

func TestAugmentKeepsSyntheticAliases(t *testing.T) {
	// The augmented set must reference the live synthetic tensors so later
	// fine-tuning is reflected; real additions must be clones.
	client := clientSet(t, 4, 18)
	cfg := DefaultConfig()
	cfg.Scale = 4
	rng := rand.New(rand.NewSource(19))
	syn := InitSynthetic(client, cfg, rng)
	aug := Augment(syn, client, rng)
	found := false
	for _, ax := range aug.X {
		if ax == syn.X[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("Augment must alias synthetic samples")
	}
}

func TestFineTuneRunsAndCounts(t *testing.T) {
	client := clientSet(t, 6, 20)
	cfg := DefaultConfig()
	cfg.Scale = 6
	cfg.RealBatch = 8
	rng := rand.New(rand.NewSource(21))
	syn := InitSynthetic(client, cfg, rng)
	ft := FineTuneConfig{
		OuterSteps: 2, InnerSteps: 2, ModelLR: 0.05,
		Arch:  nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 4, Depth: 1},
		Match: cfg,
	}
	counter, err := FineTune(syn, client, ft, rng)
	if err != nil {
		t.Fatal(err)
	}
	if counter.GradEvals == 0 {
		t.Fatal("fine-tune must count gradient evaluations")
	}
}

func TestFineTuneValidates(t *testing.T) {
	client := clientSet(t, 2, 22)
	rng := rand.New(rand.NewSource(23))
	syn := InitSynthetic(client, DefaultConfig(), rng)
	bad := FineTuneConfig{OuterSteps: 1, InnerSteps: 0, ModelLR: 0.1,
		Arch: nn.DefaultConvNetConfig(8, 8, 1, 10), Match: DefaultConfig()}
	if _, err := FineTune(syn, client, bad, rng); err == nil {
		t.Fatal("expected validation error")
	}
	empty := data.NewDataset(8, 8, 1, 10)
	ok := FineTuneConfig{OuterSteps: 1, InnerSteps: 1, ModelLR: 0.1,
		Arch: nn.DefaultConvNetConfig(8, 8, 1, 10), Match: DefaultConfig()}
	if _, err := FineTune(empty, client, ok, rng); err == nil {
		t.Fatal("expected error on empty synthetic set")
	}
}

func TestDistributionMatchingReducesEmbeddingDistance(t *testing.T) {
	client := clientSet(t, 10, 60)
	cfg := DefaultConfig()
	cfg.Scale = 5
	cfg.LR = 0.05
	cfg.Objective = DistributionMatching
	rng := rand.New(rand.NewSource(61))
	matcher := NewMatcher(cfg, data.NewCohort([]*data.Dataset{client}), rng)
	arch := nn.ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 10, Width: 4, Depth: 1}
	model := nn.NewConvNet(arch, rng)

	embDist := func() float64 {
		syn := matcher.Sets[0]
		total := 0.0
		embLayer := model.BindFrozen().NumLayers() - 1
		for c := 0; c < 10; c++ {
			realSub, synSub := client.OfClass(c), syn.OfClass(c)
			if realSub.Len() == 0 || synSub.Len() == 0 {
				continue
			}
			xD, _ := realSub.All()
			xS, _ := synSub.All()
			embD := flatten2D(model.BindFrozen().ForwardUpTo(ad.Const(xD), embLayer))
			embS := flatten2D(model.BindFrozen().ForwardUpTo(ad.Const(xS), embLayer))
			total += distributionDistance(embS, embD).Item()
		}
		return total
	}

	before := embDist()
	ctx := fl.StepContext{Model: model, Client: client, Rng: rng, ClientID: 0}
	for i := 0; i < 8; i++ {
		matcher.MatchStep(ctx)
	}
	after := embDist()
	if after >= before {
		t.Fatalf("distribution matching did not reduce distance: %.4f → %.4f", before, after)
	}
}

func TestObjectiveStrings(t *testing.T) {
	if GradientMatching.String() != "gradient-matching" ||
		DistributionMatching.String() != "distribution-matching" {
		t.Fatal("bad objective strings")
	}
	if Objective(9).String() != "unknown-objective" {
		t.Fatal("bad unknown objective string")
	}
}

func TestDistributionDistanceZeroForIdenticalBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	emb := ad.Const(tensor.Randn(rng, 1, 4, 6))
	if d := distributionDistance(emb, emb).Item(); d > 1e-12 {
		t.Fatalf("self distance = %g", d)
	}
}
