package distill

import (
	ad "quickdrop/internal/autodiff"
)

// Objective selects how synthetic samples are optimized during in-situ
// distillation.
type Objective int

const (
	// GradientMatching is the paper's objective (Zhao et al. ICLR '21
	// adapted for unlearning, §3.2.2): match per-class gradients between
	// synthetic and real data. Requires second-order autodiff.
	GradientMatching Objective = iota
	// DistributionMatching is the cheaper first-order alternative from
	// the paper's related work (Zhao & Bilen WACV '23): match the mean
	// penultimate-layer embedding of synthetic and real samples.
	DistributionMatching
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case GradientMatching:
		return "gradient-matching"
	case DistributionMatching:
		return "distribution-matching"
	default:
		return "unknown-objective"
	}
}

// distributionDistance computes ‖mean(embS) − mean(embD)‖² for embedding
// matrices [B, F]; embD must be detached.
func distributionDistance(embS, embD *ad.Value) *ad.Value {
	bS := embS.Data.Dim(0)
	bD := embD.Data.Dim(0)
	meanS := ad.Scale(ad.SumAxes(embS, 0), 1/float64(bS)) // [1, F]
	meanD := ad.Scale(ad.SumAxes(embD, 0), 1/float64(bD)) // [1, F]
	diff := ad.Sub(meanS, meanD)
	return ad.SumAll(ad.Mul(diff, diff))
}
