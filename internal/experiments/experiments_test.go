package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/eval"
)

// micro is a minimal scale for structural tests: runs are fast and the
// assertions check plumbing (rows, costs, stages), not accuracy.
func micro() Scale {
	return Scale{Name: "micro", ImageSize: 8, PerClass: 8, Width: 4, Depth: 1,
		TrainRound: 3, LocalSteps: 3, BatchSize: 8, Retrain: 3, Seed: 7}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "standard", "large"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Fatalf("ScaleByName(%q) = %+v, %v", name, sc, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestNewSetup(t *testing.T) {
	sc := micro()
	iid, err := NewSetup("mnistlike", 4, 0, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(iid.Clients) != 4 || iid.Test.Len() == 0 {
		t.Fatalf("bad setup %+v", iid)
	}
	nonIID, err := NewSetup("cifarlike", 4, 0.1, sc)
	if err != nil {
		t.Fatal(err)
	}
	if nonIID.Arch.InputC != 3 {
		t.Fatalf("cifarlike must be 3-channel, got %d", nonIID.Arch.InputC)
	}
	if _, err := NewSetup("imagenet", 4, 0.1, sc); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestTable1Capabilities(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table 1 must have 6 rows, got %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Name != "QuickDrop" || !last.ClassLevel || !last.ClientLevel || !last.Relearn || !last.StorageEfficient {
		t.Fatalf("QuickDrop row wrong: %+v", last)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	out := buf.String()
	for _, name := range []string{"Retrain-Or", "FedEraser", "S2U", "SGA", "FU-MP", "QuickDrop"} {
		if !strings.Contains(out, name) {
			t.Fatalf("printed table missing %s:\n%s", name, out)
		}
	}
}

func TestRunMethodsValidation(t *testing.T) {
	setup, err := NewSetup("mnistlike", 3, 0, micro())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMethods(setup, MethodRunOpts{}); err == nil {
		t.Fatal("expected error for no methods")
	}
	if _, err := RunMethods(setup, MethodRunOpts{
		Methods: []string{"NoSuchMethod"},
		Req:     core.Request{Kind: core.ClassLevel, Class: 0},
	}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestRunMethodsClassLevel(t *testing.T) {
	setup, err := NewSetup("mnistlike", 3, 0, micro())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunMethods(setup, MethodRunOpts{
		Methods: []string{"Retrain-Or", "QuickDrop"},
		Req:     core.Request{Kind: core.ClassLevel, Class: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Total.WallTime <= 0 || r.TrainTime <= 0 {
			t.Fatalf("%s missing costs: %+v", r.Method, r)
		}
	}
	if rows[0].Speedup != 1 {
		t.Fatalf("oracle speedup = %g, want 1", rows[0].Speedup)
	}
	if rows[1].Speedup <= 0 {
		t.Fatalf("QuickDrop speedup = %g", rows[1].Speedup)
	}
	// QuickDrop's unlearning must touch far fewer samples than retraining.
	if rows[1].Unlearn.DataSize >= rows[0].Unlearn.DataSize {
		t.Fatalf("QuickDrop data %d not compressed vs oracle %d",
			rows[1].Unlearn.DataSize, rows[0].Unlearn.DataSize)
	}
	var buf bytes.Buffer
	PrintMethodRows(&buf, rows)
	if !strings.Contains(buf.String(), "QuickDrop") {
		t.Fatal("printer dropped a row")
	}
}

func TestRunMethodsClientLevelWithRelearn(t *testing.T) {
	setup, err := NewSetup("mnistlike", 3, 0, micro())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunMethods(setup, MethodRunOpts{
		Methods: []string{"S2U", "QuickDrop"},
		Req:     core.Request{Kind: core.ClientLevel, Client: 1},
		Relearn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CanRelearn && !r.RelearnRan {
			t.Fatalf("%s should have relearned", r.Method)
		}
	}
	var buf bytes.Buffer
	PrintRelearnRows(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("relearn printer produced nothing")
	}
}

func TestFigure2Structure(t *testing.T) {
	res, err := Figure2(micro())
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != 9 {
		t.Fatalf("target = %d", res.Target)
	}
	// trained + unlearn + 4 recovery snapshots.
	if len(res.Stages) != 6 || len(res.Acc) != 6 {
		t.Fatalf("stages = %v", res.Stages)
	}
	for _, acc := range res.Acc {
		if len(acc) != 10 {
			t.Fatalf("per-class accuracy has %d entries", len(acc))
		}
	}
	var buf bytes.Buffer
	PrintFigure2(&buf, res)
	if !strings.Contains(buf.String(), "recover-4") {
		t.Fatal("printer missing recovery stages")
	}
}

func TestFigure3Structure(t *testing.T) {
	rows, err := Figure3(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.FSetRate < 0 || r.FSetRate > 1 || r.RSetRate < 0 || r.RSetRate > 1 {
			t.Fatalf("rates out of range: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintFigure3(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("printer produced nothing")
	}
}

func TestFigure5And6Structure(t *testing.T) {
	f5, err := Figure5(micro(), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f5) != 2 || f5[0].FineTuneEvals != 0 || f5[1].FineTuneEvals == 0 {
		t.Fatalf("figure5 rows wrong: %+v", f5)
	}
	if f5[0].TrainGradEvals == 0 {
		t.Fatal("training gradient evals missing")
	}

	f6, err := Figure6(micro(), []float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(f6) != 2 {
		t.Fatalf("figure6 rows wrong: %+v", f6)
	}
	// Lower scale keeps more synthetic samples.
	if f6[0].SynSamples <= f6[1].SynSamples {
		t.Fatalf("s=1 must keep more synthetic samples than s=100: %+v", f6)
	}
	var buf bytes.Buffer
	PrintFigure5(&buf, f5)
	PrintFigure6(&buf, f6)
	if buf.Len() == 0 {
		t.Fatal("printers produced nothing")
	}
}

func TestTable6Structure(t *testing.T) {
	rows, err := Table6(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.DistillTime <= 0 || r.TotalTime <= 0 {
			t.Fatalf("missing timings: %+v", r)
		}
		if r.Overhead <= 0 || r.Overhead >= 1 {
			t.Fatalf("overhead %.2f out of (0,1)", r.Overhead)
		}
	}
	var buf bytes.Buffer
	PrintTable6(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("printer produced nothing")
	}
}

func TestExtensionSampleLevel(t *testing.T) {
	rows, err := ExtensionSampleLevel(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Total.WallTime <= 0 {
			t.Fatalf("%s missing cost", r.Method)
		}
		if r.ForgottenMIA < 0 || r.ForgottenMIA > 1 || r.RetainedMIA < 0 || r.RetainedMIA > 1 {
			t.Fatalf("%s rates out of range: %+v", r.Method, r)
		}
	}
	var buf bytes.Buffer
	PrintExtensionSample(&buf, rows)
	if !strings.Contains(buf.String(), "QuickDrop") {
		t.Fatal("printer dropped a row")
	}
}

func TestAverageMethodRows(t *testing.T) {
	mk := func(f float64, ms int) MethodRow {
		return MethodRow{Method: "QuickDrop", FinalF: f,
			Total: eval.Cost{Rounds: 3, WallTime: time.Duration(ms) * time.Millisecond, DataSize: 10}}
	}
	avg := AverageMethodRows([][]MethodRow{{mk(0.2, 100)}, {mk(0.4, 300)}})
	if len(avg) != 1 {
		t.Fatalf("got %d rows", len(avg))
	}
	if diff := avg[0].FinalF - 0.3; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("FinalF = %g, want 0.3", avg[0].FinalF)
	}
	if avg[0].Total.WallTime != 200*time.Millisecond {
		t.Fatalf("WallTime = %v", avg[0].Total.WallTime)
	}
	// Single run passes through unchanged; empty input yields nil.
	one := AverageMethodRows([][]MethodRow{{mk(0.5, 10)}})
	if one[0].FinalF != 0.5 {
		t.Fatal("single run must pass through")
	}
	if AverageMethodRows(nil) != nil {
		t.Fatal("empty input must yield nil")
	}
}

func TestRunMethodsRepeatedAverages(t *testing.T) {
	sc := micro()
	sc.Repeats = 2
	rows, err := RunMethodsRepeated(sc, func(sc Scale) (*Setup, MethodRunOpts, error) {
		setup, err := NewSetup("mnistlike", 3, 0, sc)
		if err != nil {
			return nil, MethodRunOpts{}, err
		}
		return setup, MethodRunOpts{
			Methods: []string{"SGA-Or", "QuickDrop"},
			Req:     core.Request{Kind: core.ClassLevel, Class: 1},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Method != "SGA-Or" {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestAblationsRun(t *testing.T) {
	rows, err := AblationAugment(micro())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Variant != "augment" {
		t.Fatalf("ablation rows wrong: %+v", rows)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, "augment", rows)
	if !strings.Contains(buf.String(), "no-augment") {
		t.Fatal("printer missing variant")
	}
}

func TestRunDispatcher(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table1", micro(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "QuickDrop") {
		t.Fatal("table1 output missing")
	}
	if err := Run("no-such-id", micro(), &buf); err == nil {
		t.Fatal("expected error for unknown id")
	}
	ids := IDs()
	if len(ids) != 16 {
		t.Fatalf("IDs() has %d entries", len(ids))
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
