package experiments

import (
	"fmt"
	"io"
	"time"

	"quickdrop/internal/baselines"
	"quickdrop/internal/core"
	"quickdrop/internal/eval"
	"quickdrop/internal/telemetry"
)

// MethodRow is one table row comparing an FU approach on a request, with
// the paper's columns: accuracy after the unlearning stage, accuracy after
// recovery, per-stage cost, and speedup versus Retrain-Or.
type MethodRow struct {
	Method string
	// StageF/StageR: F-Set and R-Set accuracy right after the unlearning
	// stage (before recovery).
	StageF, StageR float64
	// FinalF/FinalR: accuracy after recovery completes.
	FinalF, FinalR float64
	// RelearnF/RelearnR: accuracy after relearning (when requested).
	RelearnF, RelearnR float64
	CanRelearn         bool
	RelearnRan         bool
	Unlearn, Recover   eval.Cost
	Total              eval.Cost
	Speedup            float64
	// TrainTime is the initial FL training cost (context, not speedup).
	TrainTime time.Duration
}

// MethodRunOpts selects what RunMethods compares.
type MethodRunOpts struct {
	// Methods lists method names; "QuickDrop" plus any of the baselines.
	Methods []string
	// Req is the unlearning request all methods serve.
	Req core.Request
	// Relearn additionally relearns the request afterwards (Table 5).
	Relearn bool
	// Participation subsamples clients during training and recovery
	// (Table 3 uses 0.1); unlearning always uses full participation.
	Participation float64
}

// RunMethods executes the same unlearning request with every selected
// method on identical data and returns one row per method, with speedups
// relative to the Retrain-Or row when present.
func RunMethods(setup *Setup, opts MethodRunOpts) ([]MethodRow, error) {
	if len(opts.Methods) == 0 {
		return nil, fmt.Errorf("experiments: no methods selected")
	}
	rows := make([]MethodRow, 0, len(opts.Methods))
	for _, name := range opts.Methods {
		var row MethodRow
		var err error
		if name == "QuickDrop" {
			row, err = runQuickDrop(setup, opts)
		} else {
			row, err = runBaseline(setup, name, opts)
		}
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	// Speedups vs Retrain-Or.
	var oracle *MethodRow
	for i := range rows {
		if rows[i].Method == "Retrain-Or" {
			oracle = &rows[i]
		}
	}
	if oracle != nil {
		for i := range rows {
			rows[i].Speedup = rows[i].Total.Speedup(oracle.Total)
		}
	}
	for _, r := range rows {
		setup.Scale.Events.Emit(costEvent{
			Event: "cost", Dataset: setup.Dataset, Method: r.Method,
			UnlearnRounds: r.Unlearn.Rounds, UnlearnSeconds: r.Unlearn.WallTime.Seconds(),
			RecoverRounds: r.Recover.Rounds, RecoverSeconds: r.Recover.WallTime.Seconds(),
			TotalSeconds: r.Total.WallTime.Seconds(), Speedup: r.Speedup,
		})
	}
	return rows, nil
}

// costEvent is the JSONL record RunMethods emits per method row.
type costEvent struct {
	Event          string  `json:"event"`
	Dataset        string  `json:"dataset"`
	Method         string  `json:"method"`
	UnlearnRounds  int     `json:"unlearn_rounds"`
	UnlearnSeconds float64 `json:"unlearn_seconds"`
	RecoverRounds  int     `json:"recover_rounds"`
	RecoverSeconds float64 `json:"recover_seconds"`
	TotalSeconds   float64 `json:"total_seconds"`
	Speedup        float64 `json:"speedup"`
}

func runQuickDrop(setup *Setup, opts MethodRunOpts) (MethodRow, error) {
	row := MethodRow{Method: "QuickDrop", CanRelearn: true}
	cfg := setup.CoreConfig()
	cfg.Train.Participation = opts.Participation
	cfg.Recover.Participation = opts.Participation
	sys, err := core.NewSystem(cfg, setup.Cohort)
	if err != nil {
		return row, err
	}
	sys.Cfg.Observer = func(stage string) {
		f, r := setup.SplitAccuracy(sys.Model, opts.Req)
		setup.Scale.Telemetry.RecordSplitAccuracy(f, r)
		switch stage {
		case "unlearn":
			row.StageF, row.StageR = f, r
		case "recover":
			row.FinalF, row.FinalR = f, r
		case "relearn":
			row.RelearnF, row.RelearnR = f, r
			row.RelearnRan = true
		}
	}
	sw := telemetry.StartTimer()
	if _, err := sys.Train(); err != nil {
		return row, err
	}
	row.TrainTime = sw.Elapsed()
	rep, err := sys.Unlearn(opts.Req)
	if err != nil {
		return row, err
	}
	row.Unlearn, row.Recover, row.Total = rep.Unlearn, rep.Recover, rep.Total
	if opts.Relearn {
		if _, err := sys.Relearn(opts.Req); err != nil {
			return row, err
		}
	}
	return row, nil
}

func runBaseline(setup *Setup, name string, opts MethodRunOpts) (MethodRow, error) {
	row := MethodRow{Method: name}
	cfg := setup.BaselineConfig()
	cfg.Train.Participation = opts.Participation
	cfg.RecoverPhase.Participation = opts.Participation
	var m baselines.Method
	cfg.Observer = func(stage string) {
		f, r := setup.SplitAccuracy(m.Model(), opts.Req)
		setup.Scale.Telemetry.RecordSplitAccuracy(f, r)
		switch stage {
		case "unlearn":
			row.StageF, row.StageR = f, r
		case "recover":
			row.FinalF, row.FinalR = f, r
		case "relearn":
			row.RelearnF, row.RelearnR = f, r
			row.RelearnRan = true
		}
	}
	m, err := newMethod(name, cfg, setup)
	if err != nil {
		return row, err
	}
	row.CanRelearn = m.Capabilities().Relearn
	sw := telemetry.StartTimer()
	if err := m.Prepare(); err != nil {
		return row, err
	}
	row.TrainTime = sw.Elapsed()
	res, err := m.Unlearn(opts.Req)
	if err != nil {
		return row, err
	}
	row.Unlearn, row.Recover, row.Total = res.Unlearn, res.Recover, res.Total
	if opts.Relearn && row.CanRelearn {
		if _, err := m.Relearn(opts.Req); err != nil {
			return row, err
		}
	}
	return row, nil
}

func newMethod(name string, cfg baselines.Config, setup *Setup) (baselines.Method, error) {
	switch name {
	case "Retrain-Or":
		return baselines.NewRetrainOr(cfg, setup.Cohort)
	case "SGA-Or":
		return baselines.NewSGAOr(cfg, setup.Cohort)
	case "FedEraser":
		return baselines.NewFedEraser(cfg, setup.Cohort)
	case "FU-MP":
		return baselines.NewFUMP(cfg, setup.Cohort)
	case "S2U":
		return baselines.NewS2U(cfg, setup.Cohort)
	default:
		return nil, fmt.Errorf("experiments: unknown method %q", name)
	}
}

// RunMethodsRepeated runs the comparison sc.Repeats times with independent
// seeds and returns element-wise averaged rows, recomputing speedups from
// the averaged totals. build constructs the setup and options for a given
// scale (whose Seed is varied per repeat).
func RunMethodsRepeated(sc Scale, build func(sc Scale) (*Setup, MethodRunOpts, error)) ([]MethodRow, error) {
	reps := sc.EffectiveRepeats()
	var runs [][]MethodRow
	for i := 0; i < reps; i++ {
		s2 := sc
		s2.Seed = sc.Seed + int64(i)*1009 // decorrelate data, init and schedule
		setup, opts, err := build(s2)
		if err != nil {
			return nil, err
		}
		rows, err := RunMethods(setup, opts)
		if err != nil {
			return nil, err
		}
		runs = append(runs, rows)
	}
	return AverageMethodRows(runs), nil
}

// AverageMethodRows averages aligned rows across runs. All runs must have
// the same method order (RunMethods guarantees it for a fixed options
// value).
func AverageMethodRows(runs [][]MethodRow) []MethodRow {
	if len(runs) == 0 {
		return nil
	}
	if len(runs) == 1 {
		return runs[0]
	}
	n := float64(len(runs))
	out := make([]MethodRow, len(runs[0]))
	copy(out, runs[0])
	for i := range out {
		var acc MethodRow
		acc.Method = out[i].Method
		acc.CanRelearn = out[i].CanRelearn
		acc.RelearnRan = out[i].RelearnRan
		for _, run := range runs {
			r := run[i]
			if r.Method != acc.Method {
				panic(fmt.Sprintf("experiments: run rows misaligned: %q vs %q", r.Method, acc.Method))
			}
			acc.StageF += r.StageF
			acc.StageR += r.StageR
			acc.FinalF += r.FinalF
			acc.FinalR += r.FinalR
			acc.RelearnF += r.RelearnF
			acc.RelearnR += r.RelearnR
			acc.TrainTime += r.TrainTime
			addCost(&acc.Unlearn, r.Unlearn)
			addCost(&acc.Recover, r.Recover)
			addCost(&acc.Total, r.Total)
		}
		acc.StageF /= n
		acc.StageR /= n
		acc.FinalF /= n
		acc.FinalR /= n
		acc.RelearnF /= n
		acc.RelearnR /= n
		acc.TrainTime /= time.Duration(n)
		divCost(&acc.Unlearn, n)
		divCost(&acc.Recover, n)
		divCost(&acc.Total, n)
		out[i] = acc
	}
	// Recompute speedups from the averaged totals.
	var oracle *MethodRow
	for i := range out {
		if out[i].Method == "Retrain-Or" {
			oracle = &out[i]
		}
	}
	if oracle != nil {
		for i := range out {
			out[i].Speedup = out[i].Total.Speedup(oracle.Total)
		}
	}
	return out
}

func addCost(dst *eval.Cost, src eval.Cost) {
	dst.Rounds += src.Rounds
	dst.WallTime += src.WallTime
	dst.DataSize += src.DataSize
}

func divCost(c *eval.Cost, n float64) {
	c.Rounds = int(float64(c.Rounds)/n + 0.5)
	c.WallTime = time.Duration(float64(c.WallTime) / n)
	c.DataSize = int(float64(c.DataSize)/n + 0.5)
}

// PrintMethodRows renders rows in the style of the paper's Table 2.
func PrintMethodRows(w io.Writer, rows []MethodRow) {
	fmt.Fprintf(w, "%-11s | %7s %7s | %6s %9s %6s | %7s %7s | %6s %9s %6s | %9s %8s\n",
		"Approach", "U:F-Set", "U:R-Set", "U:Rnd", "U:Time", "U:Data",
		"R:F-Set", "R:R-Set", "R:Rnd", "R:Time", "R:Data", "Total", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s | %6.2f%% %6.2f%% | %6d %9s %6d | %6.2f%% %6.2f%% | %6d %9s %6d | %9s %7.1fx\n",
			r.Method, 100*r.StageF, 100*r.StageR,
			r.Unlearn.Rounds, r.Unlearn.WallTime.Round(time.Millisecond), r.Unlearn.DataSize,
			100*r.FinalF, 100*r.FinalR,
			r.Recover.Rounds, r.Recover.WallTime.Round(time.Millisecond), r.Recover.DataSize,
			r.Total.WallTime.Round(time.Millisecond), r.Speedup)
	}
}

// PrintRelearnRows renders the relearning columns of Table 5.
func PrintRelearnRows(w io.Writer, rows []MethodRow) {
	fmt.Fprintf(w, "%-11s | %12s %12s | %12s %12s\n",
		"Approach", "U+R F-Set", "U+R R-Set", "Relearn F", "Relearn R")
	for _, r := range rows {
		if !r.RelearnRan {
			fmt.Fprintf(w, "%-11s | %11.2f%% %11.2f%% | %12s %12s\n",
				r.Method, 100*r.FinalF, 100*r.FinalR, "—", "—")
			continue
		}
		fmt.Fprintf(w, "%-11s | %11.2f%% %11.2f%% | %11.2f%% %11.2f%%\n",
			r.Method, 100*r.FinalF, 100*r.FinalR, 100*r.RelearnF, 100*r.RelearnR)
	}
}
