package experiments

import (
	"fmt"
	"io"
)

// IDs lists every experiment in execution order: the paper's tables and
// figures, the design-choice ablations, and the sample-level extension.
func IDs() []string {
	return []string{
		"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6",
		"table3", "table4", "table5", "table6",
		"ablation-distance", "ablation-init", "ablation-augment",
		"ablation-objective", "ext-sample",
	}
}

// Run executes one experiment by id at the given scale, writing
// paper-style rows to w.
func Run(id string, sc Scale, w io.Writer) error {
	switch id {
	case "table1":
		PrintTable1(w, Table1())
	case "table2":
		rows, err := Table2(sc)
		if err != nil {
			return err
		}
		PrintMethodRows(w, rows)
	case "table3":
		rows, clients, err := Table3(sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "clients: %d (10%% participation in training/recovery)\n", clients)
		PrintMethodRows(w, rows)
	case "table4":
		nonIID, iid, err := Table4(sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "non-IID (alpha=0.1):")
		PrintMethodRows(w, nonIID)
		fmt.Fprintln(w, "IID:")
		PrintMethodRows(w, iid)
	case "table5":
		cifar, mnist, err := Table5(sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "cifarlike (20 clients, alpha=0.1):")
		PrintRelearnRows(w, cifar)
		fmt.Fprintln(w, "mnistlike (20 clients, alpha=0.1):")
		PrintRelearnRows(w, mnist)
	case "table6":
		rows, err := Table6(sc)
		if err != nil {
			return err
		}
		PrintTable6(w, rows)
	case "fig2":
		res, err := Figure2(sc)
		if err != nil {
			return err
		}
		PrintFigure2(w, res)
	case "fig3":
		rows, err := Figure3(sc)
		if err != nil {
			return err
		}
		PrintFigure3(w, rows)
	case "fig4":
		res, err := Figure4(sc)
		if err != nil {
			return err
		}
		PrintFigure4(w, res)
	case "fig5":
		rows, err := Figure5(sc, nil)
		if err != nil {
			return err
		}
		PrintFigure5(w, rows)
	case "fig6":
		rows, err := Figure6(sc, nil)
		if err != nil {
			return err
		}
		PrintFigure6(w, rows)
	case "ablation-distance":
		rows, err := AblationDistance(sc)
		if err != nil {
			return err
		}
		PrintAblation(w, "matching distance (cosine vs L2)", rows)
	case "ablation-init":
		rows, err := AblationInit(sc)
		if err != nil {
			return err
		}
		PrintAblation(w, "synthetic init (real vs noise)", rows)
	case "ablation-augment":
		rows, err := AblationAugment(sc)
		if err != nil {
			return err
		}
		PrintAblation(w, "recovery augmentation", rows)
	case "ablation-objective":
		rows, err := AblationObjective(sc)
		if err != nil {
			return err
		}
		PrintAblation(w, "distillation objective (gradient vs distribution matching)", rows)
	case "ext-sample":
		rows, err := ExtensionSampleLevel(sc)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "sample-level unlearning (extension, paper §5.1; 25% of one client's samples):")
		PrintExtensionSample(w, rows)
	default:
		return fmt.Errorf("experiments: unknown experiment id %q", id)
	}
	return nil
}
