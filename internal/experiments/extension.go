package experiments

import (
	"fmt"
	"io"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/mia"
	"quickdrop/internal/nn"
	"quickdrop/internal/telemetry"
)

// ExtensionSampleRow reports sample-level unlearning (the paper's §5.1
// future-work extension, implemented here via sub-class group
// distillation) for one method.
type ExtensionSampleRow struct {
	Method string
	// ForgottenAcc is accuracy on the erased samples (lower after
	// unlearning is better, bounded by generalization).
	ForgottenAcc float64
	// TestAcc is the global test accuracy after unlearning.
	TestAcc float64
	// ForgottenMIA / RetainedMIA are attack member rates on the erased
	// and retained samples of the target client.
	ForgottenMIA float64
	RetainedMIA  float64
	Total        eval.Cost
}

// ExtensionSampleLevel erases a quarter of one client's samples with
// QuickDrop (4 distillation groups per class), SGA-Or and Retrain-Or, and
// audits the result with the membership-inference attack.
func ExtensionSampleLevel(sc Scale) ([]ExtensionSampleRow, error) {
	setup, err := NewSetup("cifarlike", 6, 0.1, sc)
	if err != nil {
		return nil, err
	}
	// Target the largest client so a quarter of its samples is non-empty
	// even at tiny scales.
	targetClient := 0
	for i, c := range setup.Clients {
		if c.Len() > setup.Clients[targetClient].Len() {
			targetClient = i
		}
	}
	clientData := setup.Clients[targetClient]
	n := clientData.Len() / 4
	if n < 1 {
		n = 1
	}
	samples := make([]int, n)
	for i := range samples {
		samples[i] = i
	}
	req := core.Request{Kind: core.SampleLevel, Client: targetClient, Samples: samples}

	var rows []ExtensionSampleRow
	for _, name := range []string{"Retrain-Or", "SGA-Or", "QuickDrop"} {
		var (
			model     *nn.Model
			total     eval.Cost
			forgotten *data.Dataset
			retained  *data.Dataset
		)
		if name == "QuickDrop" {
			cfg := setup.CoreConfig()
			cfg.Distill.Groups = 4
			sys, err := core.NewSystem(cfg, setup.Cohort)
			if err != nil {
				return nil, err
			}
			if _, err := sys.Train(); err != nil {
				return nil, err
			}
			sw := telemetry.StartTimer()
			rep, err := sys.Unlearn(req)
			if err != nil {
				return nil, err
			}
			total = rep.Total
			total.WallTime = sw.Elapsed()
			model = sys.Model
			removed := sys.RemovedSampleSet(targetClient)
			forgotten = clientData.Subset(setKeys(removed))
			retained = clientData.WithoutIndices(removed)
		} else {
			m, err := setup.NewMethod(name)
			if err != nil {
				return nil, err
			}
			if err := m.Prepare(); err != nil {
				return nil, err
			}
			res, err := m.Unlearn(req)
			if err != nil {
				return nil, err
			}
			total = res.Total
			model = m.Model()
			removed := make(map[int]bool, len(samples))
			for _, s := range samples {
				removed[s] = true
			}
			forgotten = clientData.Subset(samples)
			retained = clientData.WithoutIndices(removed)
		}

		attack, err := mia.TrainThreshold(model, retained, setup.Test)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExtensionSampleRow{
			Method:       name,
			ForgottenAcc: eval.Accuracy(model, forgotten),
			TestAcc:      eval.Accuracy(model, setup.Test),
			ForgottenMIA: attack.MemberRate(model, forgotten),
			RetainedMIA:  attack.MemberRate(model, retained),
			Total:        total,
		})
	}
	return rows, nil
}

func setKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// PrintExtensionSample renders the sample-level comparison.
func PrintExtensionSample(w io.Writer, rows []ExtensionSampleRow) {
	fmt.Fprintf(w, "%-11s | %11s %9s | %10s %10s | %10s\n",
		"Approach", "Forgot acc", "Test acc", "MIA forgot", "MIA retain", "Time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s | %10.2f%% %8.2f%% | %9.2f%% %9.2f%% | %10s\n",
			r.Method, 100*r.ForgottenAcc, 100*r.TestAcc,
			100*r.ForgottenMIA, 100*r.RetainedMIA, r.Total.WallTime.Round(time.Millisecond))
	}
}
