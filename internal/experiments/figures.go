package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/distill"
	"quickdrop/internal/eval"
	"quickdrop/internal/mia"
	"quickdrop/internal/nn"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Figure2Result traces per-class test accuracy through the unlearning
// pipeline (paper Fig. 2): stage 0 is the trained model, stage 1 is after
// the single unlearning round, and the remaining stages follow each
// recovery round.
type Figure2Result struct {
	Target int
	Stages []string
	// Acc[stage][class] is the class-wise test accuracy.
	Acc [][]float64
}

// Figure2 reproduces the class-wise accuracy trace when unlearning class 9
// on the CIFAR-10 stand-in with 10 clients and α=0.1.
func Figure2(sc Scale) (*Figure2Result, error) {
	setup, err := NewSetup("cifarlike", 10, 0.1, sc)
	if err != nil {
		return nil, err
	}
	cfg := setup.CoreConfig()
	cfg.Recover.Rounds = 0 // recovery is driven round-by-round below
	sys, err := core.NewSystem(cfg, setup.Cohort)
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{Target: 9}
	snapshot := func(stage string) {
		acc, _ := eval.PerClassAccuracy(sys.Model, setup.Test)
		res.Stages = append(res.Stages, stage)
		res.Acc = append(res.Acc, acc)
	}
	if _, err := sys.Train(); err != nil {
		return nil, err
	}
	snapshot("trained")
	if _, err := sys.Unlearn(core.Request{Kind: core.ClassLevel, Class: res.Target}); err != nil {
		return nil, err
	}
	snapshot("unlearn")
	for r := 1; r <= 4; r++ {
		if _, err := sys.Recover(1); err != nil {
			return nil, err
		}
		snapshot(fmt.Sprintf("recover-%d", r))
	}
	return res, nil
}

// PrintFigure2 renders the accuracy trace, classes as rows.
func PrintFigure2(w io.Writer, res *Figure2Result) {
	fmt.Fprintf(w, "%-8s", "class")
	for _, s := range res.Stages {
		fmt.Fprintf(w, " %9s", s)
	}
	fmt.Fprintln(w)
	for c := range res.Acc[0] {
		marker := "  "
		if c == res.Target {
			marker = " *"
		}
		fmt.Fprintf(w, "%d%s      ", c, marker)
		for s := range res.Stages {
			fmt.Fprintf(w, " %8.1f%%", 100*res.Acc[s][c])
		}
		fmt.Fprintln(w)
	}
}

// Figure3Row reports membership-inference attack accuracy after
// unlearning for one method (paper Fig. 3).
type Figure3Row struct {
	Method string
	// FSetRate is how often the attack calls deleted samples "members"
	// (lower = better unlearning).
	FSetRate float64
	// RSetRate is how often retained training samples are recognized as
	// members (the model should still remember them).
	RSetRate float64
}

// Figure3 runs the MIA against the unlearned models of all class-capable
// methods on the Table 2 setup.
func Figure3(sc Scale) ([]Figure3Row, error) {
	setup, err := NewSetup("cifarlike", 10, 0.1, sc)
	if err != nil {
		return nil, err
	}
	req := core.Request{Kind: core.ClassLevel, Class: 9}
	forgetData := setup.ForgetOriginal(req)
	retainData := setup.RetainOriginal(req)
	retainTest := setup.Test.WithoutClass(req.Class)

	var rows []Figure3Row
	for _, name := range []string{"Retrain-Or", "FedEraser", "SGA-Or", "FU-MP", "QuickDrop"} {
		model, err := unlearnedModel(setup, name, req)
		if err != nil {
			return nil, err
		}
		attack, err := mia.TrainThreshold(model, retainData, retainTest)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure3Row{
			Method:   name,
			FSetRate: attack.MemberRate(model, forgetData),
			RSetRate: attack.MemberRate(model, retainData),
		})
	}
	return rows, nil
}

// unlearnedModel trains the named method on the setup, serves req, and
// returns the resulting global model.
func unlearnedModel(setup *Setup, name string, req core.Request) (*nn.Model, error) {
	if name == "QuickDrop" {
		sys, err := setup.NewQuickDrop()
		if err != nil {
			return nil, err
		}
		if _, err := sys.Train(); err != nil {
			return nil, err
		}
		if _, err := sys.Unlearn(req); err != nil {
			return nil, err
		}
		return sys.Model, nil
	}
	m, err := setup.NewMethod(name)
	if err != nil {
		return nil, err
	}
	if err := m.Prepare(); err != nil {
		return nil, err
	}
	if _, err := m.Unlearn(req); err != nil {
		return nil, err
	}
	return m.Model(), nil
}

// PrintFigure3 renders the MIA rates.
func PrintFigure3(w io.Writer, rows []Figure3Row) {
	fmt.Fprintf(w, "%-11s | %10s %10s\n", "Approach", "MIA F-Set", "MIA R-Set")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s | %9.2f%% %9.2f%%\n", r.Method, 100*r.FSetRate, 100*r.RSetRate)
	}
}

// Figure4Result traces per-class accuracy across a sequential stream of
// class unlearning requests (paper Fig. 4).
type Figure4Result struct {
	Order  []int
	Stages []string
	Acc    [][]float64
}

// Figure4 sequentially unlearns all ten classes in the paper's order.
func Figure4(sc Scale) (*Figure4Result, error) {
	setup, err := NewSetup("cifarlike", 10, 0.1, sc)
	if err != nil {
		return nil, err
	}
	sys, err := setup.NewQuickDrop()
	if err != nil {
		return nil, err
	}
	if _, err := sys.Train(); err != nil {
		return nil, err
	}
	res := &Figure4Result{Order: []int{5, 8, 0, 3, 2, 4, 7, 9, 1, 6}}
	snapshot := func(stage string) {
		acc, _ := eval.PerClassAccuracy(sys.Model, setup.Test)
		res.Stages = append(res.Stages, stage)
		res.Acc = append(res.Acc, acc)
	}
	snapshot("trained")
	for _, class := range res.Order {
		if _, err := sys.Unlearn(core.Request{Kind: core.ClassLevel, Class: class}); err != nil {
			return nil, err
		}
		snapshot(fmt.Sprintf("drop-%d", class))
	}
	return res, nil
}

// PrintFigure4 renders the sequential-unlearning trace.
func PrintFigure4(w io.Writer, res *Figure4Result) {
	fmt.Fprintf(w, "unlearning order: %v\n%-8s", res.Order, "class")
	for _, s := range res.Stages {
		fmt.Fprintf(w, " %8s", s)
	}
	fmt.Fprintln(w)
	for c := range res.Acc[0] {
		fmt.Fprintf(w, "%-8d", c)
		for s := range res.Stages {
			fmt.Fprintf(w, " %7.1f%%", 100*res.Acc[s][c])
		}
		fmt.Fprintln(w)
	}
}

// Figure5Row reports the effect of F fine-tuning steps (paper Fig. 5):
// R-Set accuracy after recovery and the gradient budget split between FL
// training and fine-tuning.
type Figure5Row struct {
	FineTuneSteps  int
	RSetAccuracy   float64
	TrainGradEvals int
	FineTuneEvals  int
}

// Figure5 sweeps the number of fine-tuning steps on the Table 2 setup.
// Steps are scaled down from the paper's 0–200 outer steps.
func Figure5(sc Scale, steps []int) ([]Figure5Row, error) {
	if len(steps) == 0 {
		steps = []int{0, 1, 2, 4}
	}
	req := core.Request{Kind: core.ClassLevel, Class: 9}
	var rows []Figure5Row
	for _, f := range steps {
		setup, err := NewSetup("cifarlike", 10, 0.1, sc)
		if err != nil {
			return nil, err
		}
		sys, err := setup.NewQuickDrop()
		if err != nil {
			return nil, err
		}
		if _, err := sys.Train(); err != nil {
			return nil, err
		}
		trainEvals := sys.Counter.GradEvals

		ftEvals := 0
		if f > 0 {
			ftCfg := distill.FineTuneConfig{
				OuterSteps: f,
				InnerSteps: sc.LocalSteps,
				ModelLR:    0.05,
				Arch:       setup.Arch,
				Match:      sys.Cfg.Distill,
			}
			for id, syn := range sys.Matcher.Sets {
				counter, err := distill.FineTune(syn, setup.Clients[id], ftCfg, newRng(sc.Seed+int64(f)))
				if err != nil {
					return nil, err
				}
				ftEvals += counter.GradEvals
			}
		}
		if _, err := sys.Unlearn(req); err != nil {
			return nil, err
		}
		_, r := setup.SplitAccuracy(sys.Model, req)
		rows = append(rows, Figure5Row{
			FineTuneSteps:  f,
			RSetAccuracy:   r,
			TrainGradEvals: trainEvals,
			FineTuneEvals:  ftEvals,
		})
	}
	return rows, nil
}

// PrintFigure5 renders the fine-tuning sweep.
func PrintFigure5(w io.Writer, rows []Figure5Row) {
	fmt.Fprintf(w, "%-6s | %10s | %12s %12s\n", "F", "R-Set acc", "train grads", "ft grads")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d | %9.2f%% | %12d %12d\n", r.FineTuneSteps, 100*r.RSetAccuracy, r.TrainGradEvals, r.FineTuneEvals)
	}
}

// Figure6Row reports the scale-parameter sweep (paper Fig. 6).
type Figure6Row struct {
	ScaleParam   float64
	RSetAccuracy float64
	FSetAccuracy float64
	UnlearnTime  time.Duration
	RecoverTime  time.Duration
	SynSamples   int
}

// Figure6 sweeps the distillation scale parameter s on the Table 2 setup.
func Figure6(sc Scale, scales []float64) ([]Figure6Row, error) {
	if len(scales) == 0 {
		scales = []float64{1, 2, 5, 20, 100}
	}
	req := core.Request{Kind: core.ClassLevel, Class: 9}
	var rows []Figure6Row
	for _, s := range scales {
		setup, err := NewSetup("cifarlike", 10, 0.1, sc)
		if err != nil {
			return nil, err
		}
		cfg := setup.CoreConfig()
		cfg.Distill.Scale = s
		sys, err := core.NewSystem(cfg, setup.Cohort)
		if err != nil {
			return nil, err
		}
		if _, err := sys.Train(); err != nil {
			return nil, err
		}
		syn := 0
		for i := range setup.Clients {
			if st := sys.Synthetic(i); st != nil {
				syn += st.Len()
			}
		}
		rep, err := sys.Unlearn(req)
		if err != nil {
			return nil, err
		}
		f, r := setup.SplitAccuracy(sys.Model, req)
		rows = append(rows, Figure6Row{
			ScaleParam:   s,
			RSetAccuracy: r,
			FSetAccuracy: f,
			UnlearnTime:  rep.Unlearn.WallTime,
			RecoverTime:  rep.Recover.WallTime,
			SynSamples:   syn,
		})
	}
	return rows, nil
}

// PrintFigure6 renders the scale sweep.
func PrintFigure6(w io.Writer, rows []Figure6Row) {
	fmt.Fprintf(w, "%-7s | %9s %9s | %11s %11s | %9s\n", "s", "F-Set", "R-Set", "unlearn", "recover", "syn size")
	for _, r := range rows {
		fmt.Fprintf(w, "%-7.0f | %8.2f%% %8.2f%% | %11s %11s | %9d\n",
			r.ScaleParam, 100*r.FSetAccuracy, 100*r.RSetAccuracy,
			r.UnlearnTime.Round(time.Millisecond), r.RecoverTime.Round(time.Millisecond), r.SynSamples)
	}
}
