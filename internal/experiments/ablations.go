package experiments

import (
	"fmt"
	"io"

	"quickdrop/internal/core"
	"quickdrop/internal/distill"
)

// AblationRow compares one design variant against the default pipeline.
type AblationRow struct {
	Variant      string
	FSetAccuracy float64
	RSetAccuracy float64
}

// runAblation executes the Table-2 single-class pipeline per variant,
// averaging over sc.Repeats independent seeds, letting apply mutate the
// configuration for each variant.
func runAblation(sc Scale, variants []string, apply func(variant string, cfg *core.Config)) ([]AblationRow, error) {
	req := core.Request{Kind: core.ClassLevel, Class: 9}
	reps := sc.EffectiveRepeats()
	var rows []AblationRow
	for _, v := range variants {
		var fSum, rSum float64
		for rep := 0; rep < reps; rep++ {
			s2 := sc
			s2.Seed = sc.Seed + int64(rep)*1009
			setup, err := NewSetup("cifarlike", 10, 0.1, s2)
			if err != nil {
				return nil, err
			}
			cfg := setup.CoreConfig()
			apply(v, &cfg)
			sys, err := core.NewSystem(cfg, setup.Cohort)
			if err != nil {
				return nil, err
			}
			if _, err := sys.Train(); err != nil {
				return nil, err
			}
			if _, err := sys.Unlearn(req); err != nil {
				return nil, err
			}
			f, r := setup.SplitAccuracy(sys.Model, req)
			fSum += f
			rSum += r
		}
		rows = append(rows, AblationRow{Variant: v, FSetAccuracy: fSum / float64(reps), RSetAccuracy: rSum / float64(reps)})
	}
	return rows, nil
}

// AblationDistance compares the grouped cosine matching distance against
// plain squared L2 (DESIGN.md decision 2).
func AblationDistance(sc Scale) ([]AblationRow, error) {
	return runAblation(sc, []string{"cosine", "l2"}, func(v string, cfg *core.Config) {
		if v == "l2" {
			cfg.DistillDistance = distill.L2Distance
		}
	})
}

// AblationInit compares real-sample initialization of the synthetic data
// against Gaussian noise (DESIGN.md decision 4; the paper found
// real-sample init more effective, §4.1).
func AblationInit(sc Scale) ([]AblationRow, error) {
	return runAblation(sc, []string{"real-init", "noise-init"}, func(v string, cfg *core.Config) {
		cfg.Distill.NoiseInit = v == "noise-init"
	})
}

// AblationAugment compares recovery with and without the 1:1 original-
// sample augmentation (paper §3.3.1; DESIGN.md decision 5).
func AblationAugment(sc Scale) ([]AblationRow, error) {
	return runAblation(sc, []string{"augment", "no-augment"}, func(v string, cfg *core.Config) {
		cfg.Augment = v == "augment"
	})
}

// AblationObjective compares the paper's second-order gradient matching
// against the cheaper first-order distribution matching from its related
// work (Zhao & Bilen '23).
func AblationObjective(sc Scale) ([]AblationRow, error) {
	return runAblation(sc, []string{"gradient-match", "distribution-match"}, func(v string, cfg *core.Config) {
		if v == "distribution-match" {
			cfg.Distill.Objective = distill.DistributionMatching
		}
	})
}

// PrintAblation renders ablation rows.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintf(w, "ablation: %s\n%-12s | %8s %8s\n", title, "variant", "F-Set", "R-Set")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s | %7.2f%% %7.2f%%\n", r.Variant, 100*r.FSetAccuracy, 100*r.RSetAccuracy)
	}
}
