// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on this reproduction's substrate. Each artifact has a
// Run function returning structured results plus a printer that emits
// paper-style rows; cmd/experiments and the repository's benchmarks drive
// them. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"math/rand"

	"quickdrop/internal/baselines"
	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/nn"
	"quickdrop/internal/telemetry"
)

// Scale groups the substrate-size knobs so every experiment can run in
// seconds (Quick), minutes (Standard), or closer to paper volume (Large).
// The paper trained 200 rounds × 50 steps on 32×32 images with a
// 128-filter ConvNet on a GPU; the presets keep the algorithmic structure
// (1 unlearn round, 2 recovery rounds, s=100 semantics) while shrinking
// the substrate (see DESIGN.md, substitutions).
type Scale struct {
	Name       string
	ImageSize  int
	PerClass   int // training samples per class
	Width      int // ConvNet filters per block
	Depth      int // ConvNet blocks
	TrainRound int
	LocalSteps int
	BatchSize  int
	Retrain    int // Retrain-Or rounds
	Seed       int64
	// Repeats averages each method-comparison experiment over this many
	// independent seeds (the paper reports 5-run averages); 0 or 1 runs
	// once.
	Repeats int
	// Telemetry, if set, instruments every system and baseline the
	// experiments construct. Nil disables observability at zero cost.
	Telemetry *telemetry.Pipeline
	// Events, if set, receives one JSONL cost event per method row.
	Events *telemetry.EventLog
}

// EffectiveRepeats returns the run count (≥ 1).
func (s Scale) EffectiveRepeats() int {
	if s.Repeats < 1 {
		return 1
	}
	return s.Repeats
}

// Quick finishes each experiment in seconds; the default for benchmarks.
func Quick() Scale {
	return Scale{Name: "quick", ImageSize: 8, PerClass: 20, Width: 8, Depth: 2,
		TrainRound: 18, LocalSteps: 5, BatchSize: 16, Retrain: 18, Seed: 42}
}

// Standard takes minutes per experiment and tightens the accuracy gaps.
func Standard() Scale {
	return Scale{Name: "standard", ImageSize: 12, PerClass: 30, Width: 16, Depth: 2,
		TrainRound: 20, LocalSteps: 8, BatchSize: 24, Retrain: 20, Seed: 42}
}

// Large approaches paper volume; expect long CPU runs.
func Large() Scale {
	return Scale{Name: "large", ImageSize: 16, PerClass: 80, Width: 32, Depth: 3,
		TrainRound: 40, LocalSteps: 10, BatchSize: 32, Retrain: 40, Seed: 42}
}

// ScaleByName resolves a preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick(), nil
	case "standard":
		return Standard(), nil
	case "large":
		return Large(), nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (quick|standard|large)", name)
	}
}

// Setup is the shared experimental environment: a generated dataset
// partitioned across clients, plus the architecture matched to it.
type Setup struct {
	Dataset string
	Clients []*data.Dataset
	// Cohort wraps Clients behind the registry interface the FL stack and
	// all method constructors consume. It shares the same shard pointers,
	// so behavior is identical to passing the slice directly.
	Cohort *data.Cohort
	Test   *data.Dataset
	Arch   nn.ConvNetConfig
	Scale  Scale
	// Alpha records the Dirichlet concentration (0 = IID).
	Alpha float64
}

// NewSetup generates the dataset and partitions it. alpha ≤ 0 selects IID
// partitioning; otherwise Dirichlet(alpha) non-IID (paper default 0.1).
func NewSetup(dataset string, nClients int, alpha float64, sc Scale) (*Setup, error) {
	spec, err := data.SpecByName(dataset, sc.ImageSize, sc.PerClass)
	if err != nil {
		return nil, err
	}
	train, test := data.Generate(spec, sc.Seed)
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	var parts []*data.Dataset
	if alpha <= 0 {
		parts = data.PartitionIID(train, nClients, rng)
	} else {
		parts = data.PartitionDirichlet(train, nClients, alpha, rng)
	}
	arch := nn.ConvNetConfig{
		InputH: spec.H, InputW: spec.W, InputC: spec.C,
		Classes: spec.Classes, Width: sc.Width, Depth: sc.Depth,
	}
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	return &Setup{
		Dataset: dataset, Clients: parts, Cohort: data.NewCohort(parts),
		Test: test, Arch: arch, Scale: sc, Alpha: alpha,
	}, nil
}

// CoreConfig builds the QuickDrop configuration for this setup. The paper
// hyperparameters that are scale-free (1 unlearn round at η=0.02, 2
// recovery rounds at η=0.01) are kept verbatim.
func (s *Setup) CoreConfig() core.Config {
	cfg := core.DefaultConfig(s.Arch)
	cfg.Train = core.PhaseParams{Rounds: s.Scale.TrainRound, LocalSteps: s.Scale.LocalSteps,
		BatchSize: s.Scale.BatchSize, LR: 0.1}
	cfg.Unlearn = core.PhaseParams{Rounds: 1, LocalSteps: s.Scale.LocalSteps,
		BatchSize: s.Scale.BatchSize, LR: 0.02}
	cfg.Recover = core.PhaseParams{Rounds: 2, LocalSteps: s.Scale.LocalSteps,
		BatchSize: s.Scale.BatchSize, LR: 0.01}
	cfg.Relearn = core.PhaseParams{Rounds: 2, LocalSteps: s.Scale.LocalSteps,
		BatchSize: s.Scale.BatchSize, LR: 0.01}
	// Paper scale s=100; tiny client shards always keep ≥1 synthetic
	// sample per held class through the ceiling, exactly as in the paper.
	cfg.Distill.Scale = 100
	cfg.Seed = s.Scale.Seed
	cfg.Telemetry = s.Scale.Telemetry
	return cfg
}

// BaselineConfig builds the shared baseline configuration.
func (s *Setup) BaselineConfig() baselines.Config {
	cfg := baselines.DefaultConfig(s.Arch)
	cc := s.CoreConfig()
	cfg.Train = cc.Train
	cfg.UnlearnPhase = cc.Unlearn
	cfg.RecoverPhase = cc.Recover
	// Baselines relearn on ORIGINAL data (paper §4.7); the learning rate
	// is tuned separately from QuickDrop's synthetic-data relearning.
	cfg.RelearnPhase = cc.Relearn
	cfg.RelearnPhase.LR = 0.05
	cfg.RetrainRounds = s.Scale.Retrain
	cfg.Seed = s.Scale.Seed
	cfg.Telemetry = s.Scale.Telemetry
	return cfg
}

// NewMethod constructs a baseline by name with this setup's default
// configuration.
func (s *Setup) NewMethod(name string) (baselines.Method, error) {
	return newMethod(name, s.BaselineConfig(), s)
}

// NewQuickDrop constructs (but does not train) the QuickDrop system.
func (s *Setup) NewQuickDrop() (*core.System, error) {
	return core.NewSystem(s.CoreConfig(), s.Cohort)
}

// ForgetOriginal returns the original-data forget set for a request,
// pooled across clients — the evaluation F-Set for client-level requests
// and for MIA.
func (s *Setup) ForgetOriginal(req core.Request) *data.Dataset {
	switch req.Kind {
	case core.ClassLevel:
		var parts []*data.Dataset
		for _, c := range s.Clients {
			parts = append(parts, c.OfClass(req.Class))
		}
		return data.Merge(parts...)
	case core.ClientLevel:
		return s.Clients[req.Client]
	default:
		return data.NewDataset(s.Arch.InputH, s.Arch.InputW, s.Arch.InputC, s.Arch.Classes)
	}
}

// RetainOriginal returns the pooled original retain data for a request.
func (s *Setup) RetainOriginal(req core.Request) *data.Dataset {
	var parts []*data.Dataset
	for i, c := range s.Clients {
		if req.Kind == core.ClientLevel && i == req.Client {
			continue
		}
		d := c
		if req.Kind == core.ClassLevel {
			d = d.WithoutClass(req.Class)
		}
		parts = append(parts, d)
	}
	return data.Merge(parts...)
}

// SplitAccuracy evaluates F-Set and R-Set accuracy for a request on the
// test set (class-level) or on the client's data vs the test set
// (client-level), matching the paper's metrics.
func (s *Setup) SplitAccuracy(m *nn.Model, req core.Request) (f, r float64) {
	switch req.Kind {
	case core.ClassLevel:
		return eval.ClassSplit(m, s.Test, req.Class)
	case core.ClientLevel:
		return eval.SubsetSplit(m, s.Clients[req.Client], s.Test)
	default:
		return 0, 0
	}
}
