package experiments

import (
	"fmt"
	"io"
	"time"

	"quickdrop/internal/baselines"
	"quickdrop/internal/core"
	"quickdrop/internal/telemetry"
)

// Table1Row is one row of the paper's qualitative comparison (Table 1).
type Table1Row struct {
	baselines.Capabilities
	StorageNote string
}

// Table1 returns the capability matrix of all FU approaches including
// QuickDrop.
func Table1() []Table1Row {
	// Build throwaway baselines just for their capability metadata; the
	// QuickDrop row is stated directly (its storage overhead depends on
	// the scale parameter — footnote 1 of the paper's table).
	rows := []Table1Row{
		{Capabilities: baselines.Capabilities{Name: "Retrain-Or", ClassLevel: true, ClientLevel: true, Relearn: true, StorageEfficient: true, ComputeEfficiency: "very low"}},
		{Capabilities: baselines.Capabilities{Name: "FedEraser", ClassLevel: true, ClientLevel: true, Relearn: true, StorageEfficient: false, ComputeEfficiency: "low"}},
		{Capabilities: baselines.Capabilities{Name: "S2U", ClassLevel: false, ClientLevel: true, Relearn: true, StorageEfficient: true, ComputeEfficiency: "low"}},
		{Capabilities: baselines.Capabilities{Name: "SGA", ClassLevel: true, ClientLevel: true, Relearn: true, StorageEfficient: true, ComputeEfficiency: "medium"}},
		{Capabilities: baselines.Capabilities{Name: "FU-MP", ClassLevel: true, ClientLevel: false, Relearn: false, StorageEfficient: true, ComputeEfficiency: "medium"}},
		{
			Capabilities: baselines.Capabilities{Name: "QuickDrop", ClassLevel: true, ClientLevel: true, Relearn: true, StorageEfficient: true, ComputeEfficiency: "high"},
			StorageNote:  "storage overhead is 1/s of the local dataset (s=100 → 1%)",
		},
	}
	return rows
}

// PrintTable1 renders the capability matrix.
func PrintTable1(w io.Writer, rows []Table1Row) {
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	fmt.Fprintf(w, "%-11s | %-12s %-13s %-8s %-12s %-12s\n",
		"Algorithm", "Class-unl.", "Client-unl.", "Relearn", "Storage-eff", "Compute-eff")
	for _, r := range rows {
		fmt.Fprintf(w, "%-11s | %-12s %-13s %-8s %-12s %-12s\n",
			r.Name, yn(r.ClassLevel), yn(r.ClientLevel), yn(r.Relearn), yn(r.StorageEfficient), r.ComputeEfficiency)
		if r.StorageNote != "" {
			fmt.Fprintf(w, "            (%s)\n", r.StorageNote)
		}
	}
}

// Table2 reproduces the class-level single-request comparison on the
// CIFAR-10 stand-in with 10 clients and Dirichlet(0.1) partitioning:
// accuracy and computation cost for every class-capable approach.
func Table2(sc Scale) ([]MethodRow, error) {
	return RunMethodsRepeated(sc, func(sc Scale) (*Setup, MethodRunOpts, error) {
		setup, err := NewSetup("cifarlike", 10, 0.1, sc)
		if err != nil {
			return nil, MethodRunOpts{}, err
		}
		return setup, MethodRunOpts{
			Methods: []string{"Retrain-Or", "FedEraser", "SGA-Or", "FU-MP", "QuickDrop"},
			Req:     core.Request{Kind: core.ClassLevel, Class: 9},
		}, nil
	})
}

// Table3 reproduces the 100-client SVHN experiment with 10% participation
// during training and recovery (unlearning keeps full participation). The
// client count scales with the preset to keep per-client shards non-empty.
func Table3(sc Scale) ([]MethodRow, int, error) {
	clients := 100
	if sc.PerClass*10 < 4*clients {
		// Keep ≥4 samples per client on small presets.
		clients = sc.PerClass * 10 / 4
	}
	rows, err := RunMethodsRepeated(sc, func(sc Scale) (*Setup, MethodRunOpts, error) {
		setup, err := NewSetup("svhnlike", clients, 0.1, sc)
		if err != nil {
			return nil, MethodRunOpts{}, err
		}
		return setup, MethodRunOpts{
			Methods:       []string{"Retrain-Or", "FedEraser", "SGA-Or", "FU-MP", "QuickDrop"},
			Req:           core.Request{Kind: core.ClassLevel, Class: 9},
			Participation: 0.1,
		}, nil
	})
	return rows, clients, err
}

// Table4 reproduces client-level unlearning on the CIFAR-10 stand-in with
// 20 clients under non-IID (α=0.1) and IID partitioning. FU-MP is
// excluded (class-level only); S2U is included.
func Table4(sc Scale) (nonIID, iid []MethodRow, err error) {
	clients := 20
	if sc.PerClass*10 < 4*clients {
		clients = sc.PerClass * 10 / 4
	}
	methods := []string{"Retrain-Or", "FedEraser", "S2U", "SGA-Or", "QuickDrop"}
	req := core.Request{Kind: core.ClientLevel, Client: clients / 2}

	build := func(alpha float64) func(sc Scale) (*Setup, MethodRunOpts, error) {
		return func(sc Scale) (*Setup, MethodRunOpts, error) {
			setup, err := NewSetup("cifarlike", clients, alpha, sc)
			if err != nil {
				return nil, MethodRunOpts{}, err
			}
			return setup, MethodRunOpts{Methods: methods, Req: req}, nil
		}
	}
	nonIID, err = RunMethodsRepeated(sc, build(0.1))
	if err != nil {
		return nil, nil, err
	}
	iid, err = RunMethodsRepeated(sc, build(0))
	return nonIID, iid, err
}

// Table5 reproduces the unlearn+recover and relearn comparison on the
// CIFAR-10 and MNIST stand-ins with 20 clients and α=0.1.
func Table5(sc Scale) (cifar, mnist []MethodRow, err error) {
	clients := 20
	if sc.PerClass*10 < 4*clients {
		clients = sc.PerClass * 10 / 4
	}
	methods := []string{"Retrain-Or", "FedEraser", "SGA-Or", "FU-MP", "QuickDrop"}
	opts := MethodRunOpts{
		Methods: methods,
		Req:     core.Request{Kind: core.ClassLevel, Class: 9},
		Relearn: true,
	}
	build := func(dataset string) func(sc Scale) (*Setup, MethodRunOpts, error) {
		return func(sc Scale) (*Setup, MethodRunOpts, error) {
			setup, err := NewSetup(dataset, clients, 0.1, sc)
			if err != nil {
				return nil, MethodRunOpts{}, err
			}
			return setup, opts, nil
		}
	}
	cifar, err = RunMethodsRepeated(sc, build("cifarlike"))
	if err != nil {
		return nil, nil, err
	}
	mnist, err = RunMethodsRepeated(sc, build("mnistlike"))
	return cifar, mnist, err
}

// Table6Row reports the in-situ distillation overhead for one dataset.
type Table6Row struct {
	Dataset     string
	TotalTime   time.Duration
	DistillTime time.Duration
	Overhead    float64 // DistillTime / TotalTime
}

// Table6 measures the compute overhead of in-situ dataset distillation
// during FL training for all three datasets.
func Table6(sc Scale) ([]Table6Row, error) {
	var rows []Table6Row
	for _, ds := range []string{"mnistlike", "cifarlike", "svhnlike"} {
		setup, err := NewSetup(ds, 10, 0.1, sc)
		if err != nil {
			return nil, err
		}
		sys, err := setup.NewQuickDrop()
		if err != nil {
			return nil, err
		}
		sw := telemetry.StartTimer()
		if _, err := sys.Train(); err != nil {
			return nil, err
		}
		total := sw.Elapsed()
		rows = append(rows, Table6Row{
			Dataset:     ds,
			TotalTime:   total,
			DistillTime: sys.Matcher.DDTime,
			Overhead:    float64(sys.Matcher.DDTime) / float64(total),
		})
	}
	return rows, nil
}

// PrintTable6 renders the overhead table.
func PrintTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintf(w, "%-10s | %12s %12s %9s\n", "Dataset", "Total", "DD Time", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s | %12s %12s %8.1f%%\n",
			r.Dataset, r.TotalTime.Round(time.Millisecond), r.DistillTime.Round(time.Millisecond), 100*r.Overhead)
	}
}
