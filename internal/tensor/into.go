package tensor

import (
	"fmt"
	"math"
)

// This file implements the destination-passing ("Into") forms of the hot
// kernels. Every function takes an explicit destination tensor and returns
// it; passing a nil destination allocates a fresh tensor of the result
// shape, so the allocating methods on Tensor are thin wrappers over these.
//
// Aliasing rules:
//
//   - Elementwise kernels (AddInto, SubInto, MulInto, ScaleInto, ApplyInto,
//     AddScaledInto, AddRowInto) compute dst[i] from position i of their
//     inputs only, so dst may alias either input exactly (same backing
//     array).
//   - Gather/scatter and contraction kernels (MatMulInto, MatMulNTInto,
//     MatMulTNInto, TransposeInto, SumAxesInto, BroadcastToInto,
//     Im2colInto, Col2imInto) read inputs after writing dst; dst must not
//     alias any input. They panic when they detect sharing.
//
// Because tensors own (or, via View, share) a whole backing slice, aliasing
// is detected by comparing the address of the first element. RowsView
// tensors offset into a parent are the one case this check cannot see —
// callers passing row views must enforce the rules themselves.

// sharesData reports whether a and b are backed by the same storage.
func sharesData(a, b *Tensor) bool {
	return a != nil && b != nil && len(a.data) > 0 && len(b.data) > 0 && &a.data[0] == &b.data[0]
}

// prepDst validates or allocates the destination for a result of the given
// shape. A nil destination allocates a fresh tensor; a zero-valued header
// (no storage yet — e.g. a node's inline tensor) gets fresh storage of the
// result size; otherwise the destination must hold exactly the result's
// element count and adopts the result shape, so pooled buffers can be
// reused across results of equal size but different shape.
func prepDst(dst *Tensor, shape []int, op string) *Tensor {
	if dst == nil {
		return New(shape...)
	}
	if dst.data == nil {
		n := checkShape(shape)
		dst.setShape(shape)
		dst.data = make([]float64, n)
		return dst
	}
	if len(dst.data) != prod(shape) {
		panic(dstShapeErr(op, dst.shape, shape))
	}
	// The destination adopts the result shape (it may come from the pool
	// with a stale shape of equal element count).
	dst.setShape(shape)
	return dst
}

func prod(shape []int) int {
	n := 1
	for _, s := range shape {
		n *= s
	}
	return n
}

func mustNoAlias(dst *Tensor, op string, inputs ...*Tensor) {
	for _, in := range inputs {
		if sharesData(dst, in) {
			panic(fmt.Sprintf("tensor: %s destination must not alias an input", op))
		}
	}
}

// AddInto computes dst = a + b elementwise. dst may alias a or b.
func AddInto(dst, a, b *Tensor) *Tensor {
	a.mustSameShape(b, "AddInto")
	dst = prepDst(dst, a.shape, "AddInto")
	bd := b.data
	for i, v := range a.data {
		dst.data[i] = v + bd[i]
	}
	return dst
}

// SubInto computes dst = a - b elementwise. dst may alias a or b.
func SubInto(dst, a, b *Tensor) *Tensor {
	a.mustSameShape(b, "SubInto")
	dst = prepDst(dst, a.shape, "SubInto")
	bd := b.data
	for i, v := range a.data {
		dst.data[i] = v - bd[i]
	}
	return dst
}

// MulInto computes the elementwise product dst = a ⊙ b. dst may alias a or b.
func MulInto(dst, a, b *Tensor) *Tensor {
	a.mustSameShape(b, "MulInto")
	dst = prepDst(dst, a.shape, "MulInto")
	bd := b.data
	for i, v := range a.data {
		dst.data[i] = v * bd[i]
	}
	return dst
}

// ScaleInto computes dst = c * a. dst may alias a.
func ScaleInto(dst, a *Tensor, c float64) *Tensor {
	dst = prepDst(dst, a.shape, "ScaleInto")
	for i, v := range a.data {
		dst.data[i] = c * v
	}
	return dst
}

// AddScaledInto computes dst = a + alpha*b. dst may alias a or b.
func AddScaledInto(dst, a *Tensor, alpha float64, b *Tensor) *Tensor {
	a.mustSameShape(b, "AddScaledInto")
	dst = prepDst(dst, a.shape, "AddScaledInto")
	bd := b.data
	for i, v := range a.data {
		dst.data[i] = v + alpha*bd[i]
	}
	return dst
}

// ApplyInto computes dst[i] = f(a[i]). dst may alias a.
func ApplyInto(dst, a *Tensor, f func(float64) float64) *Tensor {
	dst = prepDst(dst, a.shape, "ApplyInto")
	for i, v := range a.data {
		dst.data[i] = f(v)
	}
	return dst
}

// AddConstInto computes dst = a + c elementwise. dst may alias a.
func AddConstInto(dst, a *Tensor, c float64) *Tensor {
	dst = prepDst(dst, a.shape, "AddConstInto")
	for i, v := range a.data {
		dst.data[i] = v + c
	}
	return dst
}

// PowInto computes dst = aᵖ elementwise. dst may alias a.
func PowInto(dst, a *Tensor, p float64) *Tensor {
	dst = prepDst(dst, a.shape, "PowInto")
	for i, v := range a.data {
		dst.data[i] = math.Pow(v, p)
	}
	return dst
}

// AddRowInto treats a as [R, C] and adds the length-C vector row to every
// row: dst[r,c] = a[r,c] + row[c]. dst may alias a.
func AddRowInto(dst, a, row *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic(fmt.Sprintf("tensor: AddRowInto requires a matrix, got %v", a.shape))
	}
	cols := a.shape[1]
	if row.Len() != cols {
		panic(fmt.Sprintf("tensor: AddRowInto row length %d does not match %d columns", row.Len(), cols))
	}
	dst = prepDst(dst, a.shape, "AddRowInto")
	rd := row.data
	for r := 0; r < a.shape[0]; r++ {
		ar := a.data[r*cols : (r+1)*cols]
		dr := dst.data[r*cols : (r+1)*cols]
		for c, v := range ar {
			dr[c] = v + rd[c]
		}
	}
	return dst
}

// TransposeInto computes the matrix transpose dst = aᵀ. dst must not alias a.
func TransposeInto(dst, a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		panic(fmt.Sprintf("tensor: TransposeInto requires a matrix, got %v", a.shape))
	}
	m, n := a.shape[0], a.shape[1]
	dst = prepDst(dst, []int{n, m}, "TransposeInto")
	mustNoAlias(dst, "TransposeInto", a)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst.data[j*m+i] = a.data[i*n+j]
		}
	}
	return dst
}

// bcastSpans decomposes a broadcast between a full shape and a small shape
// of equal rank (small has 1s on the broadcast axes) into contiguous
// (outer, mid, inner) spans: full = [outer, mid, inner] row-major where mid
// collapses the broadcast axes and small = [outer, inner]. It succeeds
// whenever the broadcast axes form one contiguous run — every pattern this
// repository uses ([B,1,1,C], [B,1], [1,C], same-shape) — and reports
// ok=false otherwise so callers can fall back to the generic walk.
func bcastSpans(full, small []int) (outer, mid, inner int, ok bool) {
	if len(full) != len(small) {
		panic(bcastRankErr(small, full))
	}
	first, last := -1, -1
	for i, s := range small {
		if s != full[i] {
			if s != 1 {
				panic(bcastShapeErr(small, full))
			}
			if first == -1 {
				first = i
			}
			last = i
		}
	}
	outer, mid, inner = 1, 1, 1
	if first == -1 {
		for _, s := range full {
			outer *= s
		}
		return outer, 1, 1, true
	}
	for i := first; i <= last; i++ {
		if small[i] != 1 {
			return 0, 0, 0, false // broadcast axes are not contiguous
		}
	}
	for i := 0; i < first; i++ {
		outer *= full[i]
	}
	for i := first; i <= last; i++ {
		mid *= full[i]
	}
	for i := last + 1; i < len(full); i++ {
		inner *= full[i]
	}
	return outer, mid, inner, true
}

// forEachBcast invokes f(i, j) for every flat index i of the full shape
// with j the matching flat index of the small (broadcast) shape. It is the
// generic fallback for non-contiguous broadcast axes.
func forEachBcast(full, small []int, f func(i, j int)) {
	var idxArr [8]int
	idx := idxArr[:0]
	if len(full) > len(idxArr) {
		idx = make([]int, 0, len(full))
	}
	idx = idx[:len(full)]
	for i := range idx {
		idx[i] = 0
	}
	n := prod(full)
	for i := 0; i < n; i++ {
		j := 0
		for d, ix := range idx {
			if small[d] == 1 {
				ix = 0
			}
			j = j*small[d] + ix
		}
		f(i, j)
		incIndex(idx, full)
	}
}

// SumAxesInto sums a over the given axes (sorted, unique, in range),
// keeping them as size-1 dimensions. dst must not alias a.
func SumAxesInto(dst, a *Tensor, axes ...int) *Tensor {
	var outArr [8]int
	outShape := outArr[:0]
	if len(a.shape) > len(outArr) {
		outShape = make([]int, 0, len(a.shape))
	}
	outShape = append(outShape, a.shape...)
	for i, ax := range axes {
		if ax < 0 || ax >= len(a.shape) {
			panic(fmt.Sprintf("tensor: SumAxesInto axis %d out of range for shape %v", ax, a.shape))
		}
		if i > 0 && axes[i-1] >= ax {
			panic("tensor: SumAxesInto axes must be sorted and unique")
		}
		outShape[ax] = 1
	}
	dst = prepDst(dst, outShape, "SumAxesInto")
	mustNoAlias(dst, "SumAxesInto", a)
	sumToShape(dst, a)
	return dst
}

// SumLikeInto sums a down to ref's shape (same rank; ref has size 1 on
// every reduced axis). dst must not alias a.
func SumLikeInto(dst, a, ref *Tensor) *Tensor {
	dst = prepDst(dst, ref.shape, "SumLikeInto")
	mustNoAlias(dst, "SumLikeInto", a)
	sumToShape(dst, a)
	return dst
}

// sumToShape accumulates a into an already-shaped, not-yet-zeroed dst.
func sumToShape(dst, a *Tensor) {
	dst.Zero()
	dd, ad := dst.data, a.data
	if outer, mid, inner, ok := bcastSpans(a.shape, dst.shape); ok {
		for o := 0; o < outer; o++ {
			do := dd[o*inner : (o+1)*inner]
			for m := 0; m < mid; m++ {
				ao := ad[(o*mid+m)*inner : (o*mid+m+1)*inner]
				for i, v := range ao {
					do[i] += v
				}
			}
		}
		return
	}
	forEachBcast(a.shape, dst.shape, func(i, j int) { dd[j] += ad[i] })
}

// BroadcastToInto expands size-1 dimensions of a to shape. dst must not
// alias a.
func BroadcastToInto(dst, a *Tensor, shape ...int) *Tensor {
	dst = prepDst(dst, shape, "BroadcastToInto")
	mustNoAlias(dst, "BroadcastToInto", a)
	dd, ad := dst.data, a.data
	if outer, mid, inner, ok := bcastSpans(dst.shape, a.shape); ok {
		for o := 0; o < outer; o++ {
			ao := ad[o*inner : (o+1)*inner]
			for m := 0; m < mid; m++ {
				copy(dd[(o*mid+m)*inner:(o*mid+m+1)*inner], ao)
			}
		}
		return dst
	}
	forEachBcast(dst.shape, a.shape, func(i, j int) { dd[i] = ad[j] })
	return dst
}

// BroadcastLikeInto expands size-1 dimensions of a to ref's shape.
// dst must not alias a (the expansion reads a while writing dst).
func BroadcastLikeInto(dst, a, ref *Tensor) *Tensor {
	return BroadcastToInto(dst, a, ref.shape...)
}

// --- fused broadcast arithmetic ---
//
// The kernels below combine an elementwise operation with an implicit
// broadcast of the second (small) operand, so normalization layers and
// losses never materialize a broadcast tensor. The small operand must have
// the same rank as a with size 1 on the broadcast axes. dst may alias a
// (position-wise independent in the full index); it must not alias b.

// AddBcastInto computes dst = a + broadcast(b). dst may alias a; it
// must not alias b.
func AddBcastInto(dst, a, b *Tensor) *Tensor {
	return bcastBinary(dst, a, b, "AddBcastInto", func(x, y float64) float64 { return x + y })
}

// SubBcastInto computes dst = a - broadcast(b). dst may alias a; it
// must not alias b.
func SubBcastInto(dst, a, b *Tensor) *Tensor {
	return bcastBinary(dst, a, b, "SubBcastInto", func(x, y float64) float64 { return x - y })
}

// MulBcastInto computes dst = a ⊙ broadcast(b). dst may alias a; it
// must not alias b.
func MulBcastInto(dst, a, b *Tensor) *Tensor {
	dst = prepDst(dst, a.shape, "MulBcastInto")
	mustNoAlias(dst, "MulBcastInto", b)
	dd, ad, bd := dst.data, a.data, b.data
	if outer, mid, inner, ok := bcastSpans(a.shape, b.shape); ok {
		for o := 0; o < outer; o++ {
			bo := bd[o*inner : (o+1)*inner]
			for m := 0; m < mid; m++ {
				base := (o*mid + m) * inner
				ao := ad[base : base+inner]
				do := dd[base : base+inner]
				for i, v := range ao {
					do[i] = v * bo[i]
				}
			}
		}
		return dst
	}
	forEachBcast(a.shape, b.shape, func(i, j int) { dd[i] = ad[i] * bd[j] })
	return dst
}

func bcastBinary(dst, a, b *Tensor, op string, f func(x, y float64) float64) *Tensor {
	dst = prepDst(dst, a.shape, op)
	mustNoAlias(dst, op, b)
	dd, ad, bd := dst.data, a.data, b.data
	if outer, mid, inner, ok := bcastSpans(a.shape, b.shape); ok {
		for o := 0; o < outer; o++ {
			bo := bd[o*inner : (o+1)*inner]
			for m := 0; m < mid; m++ {
				base := (o*mid + m) * inner
				ao := ad[base : base+inner]
				do := dd[base : base+inner]
				for i, v := range ao {
					do[i] = f(v, bo[i])
				}
			}
		}
		return dst
	}
	forEachBcast(a.shape, b.shape, func(i, j int) { dd[i] = f(ad[i], bd[j]) })
	return dst
}

// MulSumInto computes dst = Σ_axes (a ⊙ b) — the product reduced over the
// given axes (kept as size-1 dims) without materializing it. a and b must
// have the same shape; dst must not alias either input.
func MulSumInto(dst, a, b *Tensor, axes ...int) *Tensor {
	a.mustSameShape(b, "MulSumInto")
	var outArr [8]int
	outShape := outArr[:0]
	if len(a.shape) > len(outArr) {
		outShape = make([]int, 0, len(a.shape))
	}
	outShape = append(outShape, a.shape...)
	for i, ax := range axes {
		if ax < 0 || ax >= len(a.shape) {
			panic(fmt.Sprintf("tensor: MulSumInto axis %d out of range for shape %v", ax, a.shape))
		}
		if i > 0 && axes[i-1] >= ax {
			panic("tensor: MulSumInto axes must be sorted and unique")
		}
		outShape[ax] = 1
	}
	dst = prepDst(dst, outShape, "MulSumInto")
	mustNoAlias(dst, "MulSumInto", a, b)
	mulSumToShape(dst, a, b)
	return dst
}

// MulSumLikeInto computes dst = a ⊙ b reduced to ref's shape (same rank;
// size 1 on reduced axes). dst must not alias a or b.
func MulSumLikeInto(dst, a, b, ref *Tensor) *Tensor {
	a.mustSameShape(b, "MulSumLikeInto")
	dst = prepDst(dst, ref.shape, "MulSumLikeInto")
	mustNoAlias(dst, "MulSumLikeInto", a, b)
	mulSumToShape(dst, a, b)
	return dst
}

func mulSumToShape(dst, a, b *Tensor) {
	dst.Zero()
	dd, ad, bd := dst.data, a.data, b.data
	if outer, mid, inner, ok := bcastSpans(a.shape, dst.shape); ok {
		for o := 0; o < outer; o++ {
			do := dd[o*inner : (o+1)*inner]
			for m := 0; m < mid; m++ {
				base := (o*mid + m) * inner
				ao := ad[base : base+inner]
				bo := bd[base : base+inner]
				for i, v := range ao {
					do[i] += v * bo[i]
				}
			}
		}
		return
	}
	forEachBcast(a.shape, dst.shape, func(i, j int) { dd[j] += ad[i] * bd[i] })
}

// MatMulInto computes the matrix product dst = a·b for a [M,K] and b [K,N].
// dst must not alias a or b. Above the parallelism threshold the output
// rows are sharded across GOMAXPROCS goroutines; each row is produced by
// exactly one goroutine running the sequential kernel, so the result is
// bitwise identical to the sequential product.
//
//lint:hotpath
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b, false, false)
	dst = prepDst(dst, []int{m, n}, "MatMulInto")
	mustNoAlias(dst, "MatMulInto", a, b)
	shardRows(m, m*n*k, func(lo, hi int) { matMulRows(dst, a, b, lo, hi) })
	return dst
}

// MatMulNTInto computes dst = a·bᵀ for a [M,K] and b [N,K] without
// materializing the transpose. dst must not alias a or b.
func MatMulNTInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b, false, true)
	dst = prepDst(dst, []int{m, n}, "MatMulNTInto")
	mustNoAlias(dst, "MatMulNTInto", a, b)
	shardRows(m, m*n*k, func(lo, hi int) { matMulNTRows(dst, a, b, lo, hi) })
	return dst
}

// MatMulTNInto computes dst = aᵀ·b for a [K,M] and b [K,N] without
// materializing the transpose. dst must not alias a or b.
func MatMulTNInto(dst, a, b *Tensor) *Tensor {
	m, k, n := matMulDims(a, b, true, false)
	dst = prepDst(dst, []int{m, n}, "MatMulTNInto")
	mustNoAlias(dst, "MatMulTNInto", a, b)
	shardRows(m, m*n*k, func(lo, hi int) { matMulTNRows(dst, a, b, lo, hi) })
	return dst
}

// matMulDims validates operand shapes for a (possibly transposed) matrix
// product and returns the result dims M, K (contraction), N.
func matMulDims(a, b *Tensor, ta, tb bool) (m, k, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(matMulRankErr(a.shape, b.shape))
	}
	m, k = a.shape[0], a.shape[1]
	if ta {
		m, k = k, m
	}
	kb, nb := b.shape[0], b.shape[1]
	if tb {
		kb, nb = nb, kb
	}
	if k != kb {
		panic(matMulDimErr(a.shape, b.shape, ta, tb))
	}
	return m, k, nb
}

// matMulRows computes output rows [lo, hi) of dst = a·b sequentially.
func matMulRows(dst, a, b *Tensor, lo, hi int) {
	k, n := a.shape[1], b.shape[1]
	for i := lo; i < hi; i++ {
		ai := a.data[i*k : (i+1)*k]
		di := dst.data[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		// ikj loop order keeps the inner loop contiguous in both b and dst.
		for kk := 0; kk < k; kk++ {
			v := ai[kk]
			if v == 0 {
				continue
			}
			bj := b.data[kk*n : (kk+1)*n]
			for j, bv := range bj {
				di[j] += v * bv
			}
		}
	}
}

// matMulNTRows computes output rows [lo, hi) of dst = a·bᵀ sequentially.
func matMulNTRows(dst, a, b *Tensor, lo, hi int) {
	k, n := a.shape[1], b.shape[0]
	for i := lo; i < hi; i++ {
		ai := a.data[i*k : (i+1)*k]
		di := dst.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			s := 0.0
			for kk, v := range ai {
				s += v * bj[kk]
			}
			di[j] = s
		}
	}
}

// matMulTNRows computes output rows [lo, hi) of dst = aᵀ·b sequentially.
func matMulTNRows(dst, a, b *Tensor, lo, hi int) {
	rows, m, n := a.shape[0], a.shape[1], b.shape[1]
	for i := lo; i < hi; i++ {
		di := dst.data[i*n : (i+1)*n]
		for j := range di {
			di[j] = 0
		}
		for r := 0; r < rows; r++ {
			v := a.data[r*m+i]
			if v == 0 {
				continue
			}
			br := b.data[r*n : (r+1)*n]
			for j, bv := range br {
				di[j] += v * bv
			}
		}
	}
}
