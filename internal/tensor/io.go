package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization format (little endian):
//
//	uint32 magic "TNSR"
//	uint32 rank
//	rank × uint32 dims
//	n × float64 data
const magic = 0x544e5352 // "TNSR"

// WriteTo serializes t to w in a compact binary format.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	write := func(v any) error {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(magic)); err != nil {
		return n, err
	}
	if err := write(uint32(len(t.shape))); err != nil {
		return n, err
	}
	for _, d := range t.shape {
		if err := write(uint32(d)); err != nil {
			return n, err
		}
	}
	buf := make([]byte, 8*len(t.data))
	for i, v := range t.data {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	m, err := w.Write(buf)
	return n + int64(m), err
}

// ReadFrom deserializes a tensor written by WriteTo.
func ReadFrom(r io.Reader) (*Tensor, error) {
	var mg, rank uint32
	if err := binary.Read(r, binary.LittleEndian, &mg); err != nil {
		return nil, fmt.Errorf("tensor: read magic: %w", err)
	}
	if mg != magic {
		return nil, fmt.Errorf("tensor: bad magic %#x", mg)
	}
	if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
		return nil, fmt.Errorf("tensor: read rank: %w", err)
	}
	if rank == 0 || rank > 8 {
		return nil, fmt.Errorf("tensor: unreasonable rank %d", rank)
	}
	shape := make([]int, rank)
	n := 1
	for i := range shape {
		var d uint32
		if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
			return nil, fmt.Errorf("tensor: read dim: %w", err)
		}
		if d == 0 {
			return nil, fmt.Errorf("tensor: zero dimension")
		}
		shape[i] = int(d)
		n *= int(d)
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("tensor: read data: %w", err)
	}
	t := New(shape...)
	for i := range t.data {
		t.data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return t, nil
}
