package tensor

import "fmt"

// ConvGeom describes the geometry of a patch-extraction (im2col) operation
// on NHWC feature maps.
type ConvGeom struct {
	Kernel  int // square kernel side
	Stride  int
	Pad     int // symmetric zero padding
	InH     int
	InW     int
	Channel int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.Kernel)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.Kernel)/g.Stride + 1 }

// Validate checks that the geometry yields a positive output size.
func (g ConvGeom) Validate() error {
	if g.Kernel <= 0 || g.Stride <= 0 || g.Pad < 0 || g.InH <= 0 || g.InW <= 0 || g.Channel <= 0 {
		return fmt.Errorf("tensor: invalid conv geometry %+v", g)
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry %+v yields empty output", g)
	}
	return nil
}

// Im2col extracts sliding kernel patches from x (shape [B, H, W, C]) and
// lays them out as a matrix of shape [B*OH*OW, K*K*C]. Row r corresponds to
// output position (b, oh, ow) in row-major order; within a row, elements are
// ordered (kh, kw, c). Out-of-bounds positions (from padding) contribute 0.
func Im2col(x *Tensor, g ConvGeom) *Tensor {
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	sh := x.Shape()
	if len(sh) != 4 || sh[1] != g.InH || sh[2] != g.InW || sh[3] != g.Channel {
		panic(fmt.Sprintf("tensor: Im2col input %v does not match geometry %+v", sh, g))
	}
	b, oh, ow := sh[0], g.OutH(), g.OutW()
	cols := g.Kernel * g.Kernel * g.Channel
	out := New(b*oh*ow, cols)
	xd, od := x.Data(), out.Data()
	row := 0
	for bi := 0; bi < b; bi++ {
		base := bi * g.InH * g.InW * g.Channel
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				dst := od[row*cols : (row+1)*cols]
				p := 0
				for kh := 0; kh < g.Kernel; kh++ {
					iy := oy*g.Stride + kh - g.Pad
					for kw := 0; kw < g.Kernel; kw++ {
						ix := ox*g.Stride + kw - g.Pad
						if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
							p += g.Channel // padded region stays zero
							continue
						}
						src := base + (iy*g.InW+ix)*g.Channel
						copy(dst[p:p+g.Channel], xd[src:src+g.Channel])
						p += g.Channel
					}
				}
				row++
			}
		}
	}
	return out
}

// Col2im is the adjoint of Im2col: it scatter-adds a patch matrix of shape
// [B*OH*OW, K*K*C] back into an NHWC tensor [B, H, W, C]. Positions covered
// by multiple patches accumulate, making Col2im the exact transpose of the
// linear map Im2col.
func Col2im(cols *Tensor, batch int, g ConvGeom) *Tensor {
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	oh, ow := g.OutH(), g.OutW()
	nc := g.Kernel * g.Kernel * g.Channel
	sh := cols.Shape()
	if len(sh) != 2 || sh[0] != batch*oh*ow || sh[1] != nc {
		panic(fmt.Sprintf("tensor: Col2im input %v does not match batch %d geometry %+v", sh, batch, g))
	}
	out := New(batch, g.InH, g.InW, g.Channel)
	cd, od := cols.Data(), out.Data()
	row := 0
	for bi := 0; bi < batch; bi++ {
		base := bi * g.InH * g.InW * g.Channel
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				src := cd[row*nc : (row+1)*nc]
				p := 0
				for kh := 0; kh < g.Kernel; kh++ {
					iy := oy*g.Stride + kh - g.Pad
					for kw := 0; kw < g.Kernel; kw++ {
						ix := ox*g.Stride + kw - g.Pad
						if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
							p += g.Channel
							continue
						}
						dst := base + (iy*g.InW+ix)*g.Channel
						for c := 0; c < g.Channel; c++ {
							od[dst+c] += src[p+c]
						}
						p += g.Channel
					}
				}
				row++
			}
		}
	}
	return out
}
