package tensor

import "fmt"

// ConvGeom describes the geometry of a patch-extraction (im2col) operation
// on NHWC feature maps.
type ConvGeom struct {
	Kernel  int // square kernel side
	Stride  int
	Pad     int // symmetric zero padding
	InH     int
	InW     int
	Channel int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.Kernel)/g.Stride + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.Kernel)/g.Stride + 1 }

// Validate checks that the geometry yields a positive output size.
func (g ConvGeom) Validate() error {
	if g.Kernel <= 0 || g.Stride <= 0 || g.Pad < 0 || g.InH <= 0 || g.InW <= 0 || g.Channel <= 0 {
		return fmt.Errorf("tensor: invalid conv geometry %+v", g) //lint:allow hotpathalloc failure path only, like a panic argument
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		return fmt.Errorf("tensor: conv geometry %+v yields empty output", g) //lint:allow hotpathalloc failure path only, like a panic argument
	}
	return nil
}

// Im2col extracts sliding kernel patches from x (shape [B, H, W, C]) and
// lays them out as a matrix of shape [B*OH*OW, K*K*C]. Row r corresponds to
// output position (b, oh, ow) in row-major order; within a row, elements are
// ordered (kh, kw, c). Out-of-bounds positions (from padding) contribute 0.
func Im2col(x *Tensor, g ConvGeom) *Tensor { return Im2colInto(nil, x, g) }

// Im2colInto is the destination-passing form of Im2col. dst must not alias
// x; a nil dst allocates. Large extractions shard their patch rows across
// GOMAXPROCS goroutines — each row is written by exactly one worker, so
// the result is identical to the sequential extraction.
//
//lint:hotpath
func Im2colInto(dst, x *Tensor, g ConvGeom) *Tensor {
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	if x.Dims() != 4 || x.Dim(1) != g.InH || x.Dim(2) != g.InW || x.Dim(3) != g.Channel {
		panic(fmt.Sprintf("tensor: Im2col input %v does not match geometry %+v", x.shape, g))
	}
	b, oh, ow := x.Dim(0), g.OutH(), g.OutW()
	cols := g.Kernel * g.Kernel * g.Channel
	rows := b * oh * ow
	dst = prepDst(dst, []int{rows, cols}, "Im2colInto")
	mustNoAlias(dst, "Im2colInto", x)
	xd, od := x.Data(), dst.Data()
	shardRows(rows, rows*cols, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			bi := row / (oh * ow)
			oy := (row / ow) % oh
			ox := row % ow
			base := bi * g.InH * g.InW * g.Channel
			out := od[row*cols : (row+1)*cols]
			p := 0
			for kh := 0; kh < g.Kernel; kh++ {
				iy := oy*g.Stride + kh - g.Pad
				for kw := 0; kw < g.Kernel; kw++ {
					ix := ox*g.Stride + kw - g.Pad
					if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
						// Padded region: must be written explicitly because
						// dst may be a recycled buffer.
						for c := 0; c < g.Channel; c++ {
							out[p+c] = 0
						}
						p += g.Channel
						continue
					}
					src := base + (iy*g.InW+ix)*g.Channel
					copy(out[p:p+g.Channel], xd[src:src+g.Channel])
					p += g.Channel
				}
			}
		}
	})
	return dst
}

// Col2im is the adjoint of Im2col: it scatter-adds a patch matrix of shape
// [B*OH*OW, K*K*C] back into an NHWC tensor [B, H, W, C]. Positions covered
// by multiple patches accumulate, making Col2im the exact transpose of the
// linear map Im2col.
func Col2im(cols *Tensor, batch int, g ConvGeom) *Tensor {
	return Col2imInto(nil, cols, batch, g)
}

// Col2imInto is the destination-passing form of Col2im. dst must not alias
// cols; a nil dst allocates. Because patches of the same image overlap, the
// scatter-add is sharded per batch image (disjoint output regions), which
// keeps the per-position accumulation order — and therefore the floating-
// point result — identical to the sequential scatter.
func Col2imInto(dst, cols *Tensor, batch int, g ConvGeom) *Tensor {
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	oh, ow := g.OutH(), g.OutW()
	nc := g.Kernel * g.Kernel * g.Channel
	if cols.Dims() != 2 || cols.Dim(0) != batch*oh*ow || cols.Dim(1) != nc {
		panic(fmt.Sprintf("tensor: Col2im input %v does not match batch %d geometry %+v", cols.shape, batch, g))
	}
	dst = prepDst(dst, []int{batch, g.InH, g.InW, g.Channel}, "Col2imInto")
	mustNoAlias(dst, "Col2imInto", cols)
	dst.Zero()
	cd, od := cols.Data(), dst.Data()
	perImage := g.InH * g.InW * g.Channel
	shardRows(batch, batch*oh*ow*nc, func(bLo, bHi int) {
		for bi := bLo; bi < bHi; bi++ {
			base := bi * perImage
			row := bi * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					src := cd[row*nc : (row+1)*nc]
					p := 0
					for kh := 0; kh < g.Kernel; kh++ {
						iy := oy*g.Stride + kh - g.Pad
						for kw := 0; kw < g.Kernel; kw++ {
							ix := ox*g.Stride + kw - g.Pad
							if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
								p += g.Channel
								continue
							}
							at := base + (iy*g.InW+ix)*g.Channel
							for c := 0; c < g.Channel; c++ {
								od[at+c] += src[p+c]
							}
							p += g.Channel
						}
					}
					row++
				}
			}
		}
	})
	return dst
}
