package tensor

import "testing"

// The shapecheck analyzer mirrors these formats; the literal expectations
// here pin the runtime side of that correspondence.
func TestShapeErrFormats(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{shapeErr("AddInto", []int{2, 3}, []int{3, 2}),
			"tensor: AddInto shape mismatch [2 3] vs [3 2]"},
		{dstShapeErr("MatMulInto", []int{2, 2}, []int{2, 5}),
			"tensor: MatMulInto destination [2 2] cannot hold result [2 5]"},
		{bcastRankErr([]int{3}, []int{4, 5}),
			"tensor: broadcast rank mismatch [3] vs [4 5]"},
		{bcastShapeErr([]int{1, 3}, []int{4, 5}),
			"tensor: cannot broadcast [1 3] against [4 5]"},
		{matMulRankErr([]int{6}, []int{2, 3}),
			"tensor: MatMul requires matrices, got [6] and [2 3]"},
		{matMulDimErr([]int{2, 3}, []int{4, 5}, false, true),
			"tensor: MatMul inner dims differ: [2 3] x [4 5] (ta=false tb=true)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("message = %q, want %q", c.got, c.want)
		}
	}
}

func TestMustSameShapePanicMessage(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic")
		}
		if r != "tensor: AddInPlace shape mismatch [2 3] vs [3 2]" {
			t.Errorf("panic = %v", r)
		}
	}()
	New(2, 3).AddInPlace(New(3, 2))
}
