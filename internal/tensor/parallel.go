package tensor

import (
	"runtime"
	"sync"
)

// parallelWork is the approximate number of scalar operations below which
// a kernel stays sequential. Tiny shapes — the bulk of unit-test traffic —
// never pay goroutine overhead, and their execution stays trivially
// deterministic; large shapes shard across GOMAXPROCS workers.
const parallelWork = 1 << 16

// shardRows splits [0, rows) into at most GOMAXPROCS contiguous chunks and
// runs fn on each chunk concurrently. work is the total scalar-op estimate
// for the whole kernel; below parallelWork fn runs inline on the full
// range. Each output row is processed by exactly one worker running the
// same sequential code path, so results are bitwise identical to a single
// fn(0, rows) call — parallelism never reorders floating-point reductions.
func shardRows(rows, work int, fn func(lo, hi int)) {
	procs := runtime.GOMAXPROCS(0)
	if work < parallelWork || rows < 2 || procs < 2 {
		fn(0, rows)
		return
	}
	if procs > rows {
		procs = rows
	}
	chunk := (rows + procs - 1) / procs
	var wg sync.WaitGroup
	for lo := 0; lo < rows; lo += chunk {
		hi := min(lo+chunk, rows)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
