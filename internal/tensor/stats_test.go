package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// naiveStats is the obvious two-pass reference implementation the
// blocked kernel is checked against.
func naiveStats(data []float64) Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, v := range data {
		if v != v {
			s.NaNs++
			continue
		}
		if math.IsInf(v, 0) {
			s.Infs++
			continue
		}
		s.Count++
		sum += v
		s.SumSq += v * v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	if s.Count > 0 {
		s.Mean = sum / float64(s.Count)
		for _, v := range data {
			if v != v || math.IsInf(v, 0) {
				continue
			}
			d := v - s.Mean
			s.M2 += d * d
		}
	}
	return s
}

func approxEq(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

// Sizes straddle the block boundary so the merge path, the tail block,
// and the single-block fast case are all exercised.
var statsSizes = []int{0, 1, 2, 5, 100, 511, 512, 513, 1024, 1025, 4096}

func TestStatsIntoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range statsSizes {
		tt := New(maxInt(n, 1))
		if n == 0 {
			tt = &Tensor{shape: []int{0}, data: []float64{}}
		}
		for i := 0; i < n; i++ {
			tt.data[i] = rng.NormFloat64() * 100
		}
		var got Stats
		StatsInto(&got, tt)
		want := naiveStats(tt.data)

		if got.Count != want.Count || got.NaNs != want.NaNs || got.Infs != want.Infs {
			t.Fatalf("n=%d counts: got %+v want %+v", n, got, want)
		}
		if got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("n=%d min/max: got [%g,%g] want [%g,%g]", n, got.Min, got.Max, want.Min, want.Max)
		}
		if !approxEq(got.Mean, want.Mean, 1e-12) {
			t.Fatalf("n=%d mean: got %g want %g", n, got.Mean, want.Mean)
		}
		if !approxEq(got.M2, want.M2, 1e-9) {
			t.Fatalf("n=%d M2: got %g want %g", n, got.M2, want.M2)
		}
		if !approxEq(got.SumSq, want.SumSq, 1e-12) {
			t.Fatalf("n=%d sumsq: got %g want %g", n, got.SumSq, want.SumSq)
		}
		if !approxEq(got.L2(), math.Sqrt(want.SumSq), 1e-12) {
			t.Fatalf("n=%d L2: got %g want %g", n, got.L2(), math.Sqrt(want.SumSq))
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestStatsIntoNonFinite(t *testing.T) {
	tt := New(1030) // spans two blocks with poison in each
	for i := range tt.data {
		tt.data[i] = float64(i%7) - 3
	}
	tt.data[3] = math.NaN()
	tt.data[600] = math.Inf(1)
	tt.data[601] = math.Inf(-1)
	tt.data[1029] = math.NaN()

	var s Stats
	StatsInto(&s, tt)
	if s.NaNs != 2 || s.Infs != 2 {
		t.Fatalf("poison counts: got NaNs=%d Infs=%d, want 2/2", s.NaNs, s.Infs)
	}
	if s.Count != 1030-4 {
		t.Fatalf("finite count: got %d want %d", s.Count, 1030-4)
	}
	if s.Finite() {
		t.Fatal("Finite() should be false with poisoned elements")
	}
	if s.NonFinite() != 4 {
		t.Fatalf("NonFinite: got %d want 4", s.NonFinite())
	}
	if s.Min != -3 || s.Max != 3 {
		t.Fatalf("min/max over finite values: got [%g,%g] want [-3,3]", s.Min, s.Max)
	}
	if math.IsNaN(s.Mean) || math.IsInf(s.Mean, 0) {
		t.Fatalf("mean must stay finite, got %g", s.Mean)
	}

	l2, nans, infs := NormStats(tt)
	if nans != 2 || infs != 2 {
		t.Fatalf("NormStats poison counts: got %d/%d want 2/2", nans, infs)
	}
	if !approxEq(l2, s.L2(), 1e-12) {
		t.Fatalf("NormStats L2 %g != StatsInto L2 %g", l2, s.L2())
	}
}

func TestStatsIntoEmptyAndReuse(t *testing.T) {
	empty := &Tensor{shape: []int{0}, data: []float64{}}
	var s Stats
	// Pre-dirty the accumulator: StatsInto must fully overwrite it.
	s = Stats{Count: 99, NaNs: 9, Mean: 1, M2: 1, SumSq: 1}
	StatsInto(&s, empty)
	if s.Count != 0 || s.NaNs != 0 || s.Infs != 0 || s.Mean != 0 || s.M2 != 0 || s.SumSq != 0 {
		t.Fatalf("empty tensor stats not reset: %+v", s)
	}
	if !math.IsInf(s.Min, 1) || !math.IsInf(s.Max, -1) {
		t.Fatalf("empty min/max: got [%g,%g] want [+Inf,-Inf]", s.Min, s.Max)
	}
	if s.Var() != 0 || s.L2() != 0 {
		t.Fatalf("empty Var/L2: got %g/%g", s.Var(), s.L2())
	}

	one := FromSlice([]float64{4}, 1)
	StatsInto(&s, one)
	if s.Count != 1 || s.Min != 4 || s.Max != 4 || s.Mean != 4 || s.Var() != 0 || s.L2() != 4 {
		t.Fatalf("single-element stats: %+v", s)
	}
}

func TestStatsVariance(t *testing.T) {
	tt := FromSlice([]float64{2, 4, 4, 4, 5, 5, 7, 9}, 8)
	var s Stats
	StatsInto(&s, tt)
	if !approxEq(s.Mean, 5, 1e-15) || !approxEq(s.Var(), 4, 1e-12) {
		t.Fatalf("textbook variance: mean=%g var=%g, want 5/4", s.Mean, s.Var())
	}
}

func TestStatsKernelsDoNotAllocate(t *testing.T) {
	tt := New(1025)
	for i := range tt.data {
		tt.data[i] = float64(i)
	}
	var s Stats
	if n := testing.AllocsPerRun(100, func() { StatsInto(&s, tt) }); n != 0 {
		t.Fatalf("StatsInto allocates %v times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { NormStats(tt) }); n != 0 {
		t.Fatalf("NormStats allocates %v times per run, want 0", n)
	}
}
