// Package tensor provides a dense, row-major float64 tensor with the
// numerical kernels required by the rest of the repository: elementwise
// arithmetic, matrix multiplication, im2col/col2im patch extraction, and
// axis reductions. It is deliberately minimal — no views, no strides beyond
// row-major — so that every operation has obvious copy semantics and can be
// verified in isolation.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float64 array with an explicit shape.
// The zero value is an empty tensor; use New or the constructors below.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero-filled tensor with the given shape. All dimensions
// must be positive; a scalar is represented as shape [1].
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: cloneInts(shape), data: make([]float64, n)}
}

// FromSlice wraps a copy of data in a tensor of the given shape.
// It panics if len(data) does not match the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (want %d)", len(data), shape, n))
	}
	d := make([]float64, n)
	copy(d, data)
	return &Tensor{shape: cloneInts(shape), data: d}
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Randn returns a tensor with elements drawn from N(0, stddev²) using rng.
func Randn(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * stddev
	}
	return t
}

// Uniform returns a tensor with elements drawn uniformly from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return cloneInts(t.shape) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. The slice is shared, not copied;
// callers that mutate it mutate the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	return &Tensor{shape: cloneInts(t.shape), data: append([]float64(nil), t.data...)}
}

// Reshape returns a copy of t with a new shape holding the same elements
// in row-major order. It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n))
	}
	c := t.Clone()
	c.shape = cloneInts(shape)
	return c
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

// --- elementwise ---

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, t.shape, o.shape))
	}
}

// Add returns t + o elementwise.
func (t *Tensor) Add(o *Tensor) *Tensor {
	t.mustSameShape(o, "Add")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] += v
	}
	return r
}

// AddInPlace accumulates o into t and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "AddInPlace")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// Sub returns t - o elementwise.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	t.mustSameShape(o, "Sub")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] -= v
	}
	return r
}

// Mul returns the elementwise (Hadamard) product.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	t.mustSameShape(o, "Mul")
	r := t.Clone()
	for i, v := range o.data {
		r.data[i] *= v
	}
	return r
}

// Scale returns c * t.
func (t *Tensor) Scale(c float64) *Tensor {
	r := t.Clone()
	for i := range r.data {
		r.data[i] *= c
	}
	return r
}

// ScaleInPlace multiplies every element by c and returns t.
func (t *Tensor) ScaleInPlace(c float64) *Tensor {
	for i := range t.data {
		t.data[i] *= c
	}
	return t
}

// AxpyInPlace computes t += alpha*o in place and returns t.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) *Tensor {
	t.mustSameShape(o, "AxpyInPlace")
	for i, v := range o.data {
		t.data[i] += alpha * v
	}
	return t
}

// Neg returns -t.
func (t *Tensor) Neg() *Tensor { return t.Scale(-1) }

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	r := t.Clone()
	for i, v := range r.data {
		r.data[i] = f(v)
	}
	return r
}

// Pow returns t with every element raised to p. Negative bases with
// non-integer exponents yield NaN, as in math.Pow.
func (t *Tensor) Pow(p float64) *Tensor {
	return t.Apply(func(v float64) float64 { return math.Pow(v, p) })
}

// Exp returns elementwise e^t.
func (t *Tensor) Exp() *Tensor { return t.Apply(math.Exp) }

// Log returns elementwise natural log.
func (t *Tensor) Log() *Tensor { return t.Apply(math.Log) }

// ReLU returns elementwise max(t, 0).
func (t *Tensor) ReLU() *Tensor {
	return t.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// ReLUMask returns a tensor of 1s where t > 0 and 0s elsewhere.
func (t *Tensor) ReLUMask() *Tensor {
	return t.Apply(func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return 0
	})
}

// --- reductions and broadcasting ---

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Dot returns the inner product of two same-shape tensors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustSameShape(o, "Dot")
	s := 0.0
	for i, v := range t.data {
		s += v * o.data[i]
	}
	return s
}

// Norm returns the Euclidean norm of all elements.
func (t *Tensor) Norm() float64 { return math.Sqrt(t.Dot(t)) }

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMaxRows treats t as [R, C] and returns the argmax column per row.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows requires a matrix, got %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best, bestV := 0, math.Inf(-1)
		for c := 0; c < cols; c++ {
			if v := t.data[r*cols+c]; v > bestV {
				best, bestV = c, v
			}
		}
		out[r] = best
	}
	return out
}

// SumAxes sums over the given axes, keeping them as size-1 dimensions.
// Axes must be sorted, unique and in range.
func (t *Tensor) SumAxes(axes ...int) *Tensor {
	reduce := make([]bool, len(t.shape))
	for i, a := range axes {
		if a < 0 || a >= len(t.shape) {
			panic(fmt.Sprintf("tensor: SumAxes axis %d out of range for shape %v", a, t.shape))
		}
		if i > 0 && axes[i-1] >= a {
			panic("tensor: SumAxes axes must be sorted and unique")
		}
		reduce[a] = true
	}
	outShape := make([]int, len(t.shape))
	for i, s := range t.shape {
		if reduce[i] {
			outShape[i] = 1
		} else {
			outShape[i] = s
		}
	}
	out := New(outShape...)
	idx := make([]int, len(t.shape))
	for off := 0; off < len(t.data); off++ {
		oOff := 0
		for i := range idx {
			oi := idx[i]
			if reduce[i] {
				oi = 0
			}
			oOff = oOff*outShape[i] + oi
		}
		out.data[oOff] += t.data[off]
		incIndex(idx, t.shape)
	}
	return out
}

// BroadcastTo expands size-1 dimensions of t to match shape. The ranks
// must be equal and every non-1 dimension must already match.
func (t *Tensor) BroadcastTo(shape ...int) *Tensor {
	if len(shape) != len(t.shape) {
		panic(fmt.Sprintf("tensor: BroadcastTo rank mismatch %v vs %v", t.shape, shape))
	}
	for i, s := range t.shape {
		if s != shape[i] && s != 1 {
			panic(fmt.Sprintf("tensor: cannot broadcast %v to %v", t.shape, shape))
		}
	}
	out := New(shape...)
	idx := make([]int, len(shape))
	for off := 0; off < len(out.data); off++ {
		sOff := 0
		for i := range idx {
			si := idx[i]
			if t.shape[i] == 1 {
				si = 0
			}
			sOff = sOff*t.shape[i] + si
		}
		out.data[off] = t.data[sOff]
		incIndex(idx, shape)
	}
	return out
}

// incIndex advances a row-major multi-index by one position.
func incIndex(idx, shape []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < shape[i] {
			return
		}
		idx[i] = 0
	}
}

// --- linear algebra ---

// MatMul returns the matrix product of t [M,K] and o [K,N].
func (t *Tensor) MatMul(o *Tensor) *Tensor {
	if len(t.shape) != 2 || len(o.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires matrices, got %v and %v", t.shape, o.shape))
	}
	m, k := t.shape[0], t.shape[1]
	k2, n := o.shape[0], o.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims differ: %v x %v", t.shape, o.shape))
	}
	out := New(m, n)
	// ikj loop order keeps the inner loop contiguous in both o and out.
	for i := 0; i < m; i++ {
		ti := t.data[i*k : (i+1)*k]
		oi := out.data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			a := ti[kk]
			if a == 0 {
				continue
			}
			bj := o.data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				oi[j] += a * bj[j]
			}
		}
	}
	return out
}

// Transpose returns the transpose of a matrix.
func (t *Tensor) Transpose() *Tensor {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires a matrix, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.data[j*m+i] = t.data[i*n+j]
		}
	}
	return out
}

// --- helpers ---

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension in shape %v", shape))
		}
		n *= s
	}
	return n
}

func cloneInts(s []int) []int { return append([]int(nil), s...) }
