// Package tensor provides a dense, row-major float64 tensor with the
// numerical kernels required by the rest of the repository: elementwise
// arithmetic, matrix multiplication, im2col/col2im patch extraction, and
// axis reductions. It is deliberately minimal — no views, no strides beyond
// row-major — so that every operation has obvious copy semantics and can be
// verified in isolation.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
)

// maxInlineRank is the rank up to which a tensor's shape is stored in the
// struct itself rather than a separate heap slice. Every tensor in this
// repository is rank ≤ 4 (NHWC maps), so shape storage is effectively free.
const maxInlineRank = 4

// Tensor is a dense row-major float64 array with an explicit shape.
// The zero value is an empty tensor; use New or the constructors below.
type Tensor struct {
	shape    []int
	data     []float64
	shapeArr [maxInlineRank]int
}

// setShape copies shape into t, using the inline backing array for ranks
// up to maxInlineRank so no separate allocation is needed.
func (t *Tensor) setShape(shape []int) {
	if len(shape) <= maxInlineRank {
		t.shape = t.shapeArr[:len(shape)]
	} else {
		t.shape = make([]int, len(shape))
	}
	copy(t.shape, shape)
}

// New returns a zero-filled tensor with the given shape. All dimensions
// must be positive; a scalar is represented as shape [1].
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	t := &Tensor{data: make([]float64, n)}
	t.setShape(shape)
	return t
}

// FromSlice wraps a copy of data in a tensor of the given shape.
// It panics if len(data) does not match the shape's element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %s (want %d)", len(data), shapeStr(shape), n))
	}
	d := make([]float64, n)
	copy(d, data)
	t := &Tensor{data: d}
	t.setShape(shape)
	return t
}

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Ones returns a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Randn returns a tensor with elements drawn from N(0, stddev²) using rng.
func Randn(rng *rand.Rand, stddev float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * stddev
	}
	return t
}

// Uniform returns a tensor with elements drawn uniformly from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return cloneInts(t.shape) }

// ShapeString renders the shape as "[d0 d1 …]" without cloning it — the
// form diagnostics should use instead of formatting Shape() with %v.
func (t *Tensor) ShapeString() string { return shapeStr(t.shape) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying storage. The slice is shared, not copied;
// callers that mutate it mutate the tensor.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{data: append([]float64(nil), t.data...)}
	c.setShape(t.shape)
	return c
}

// NewLike returns a zero-filled tensor with the same shape as t.
func NewLike(t *Tensor) *Tensor {
	c := &Tensor{data: make([]float64, len(t.data))}
	c.setShape(t.shape)
	return c
}

// Zero sets every element to 0 and returns t.
func (t *Tensor) Zero() *Tensor {
	for i := range t.data {
		t.data[i] = 0
	}
	return t
}

// CopyFrom overwrites t's elements with o's (shapes must match) and
// returns t.
func (t *Tensor) CopyFrom(o *Tensor) *Tensor {
	t.mustSameShape(o, "CopyFrom")
	copy(t.data, o.data)
	return t
}

// Reshape returns a copy of t with a new shape holding the same elements
// in row-major order. It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %s (%d elems)", t.shape, len(t.data), shapeStr(shape), n))
	}
	c := t.Clone()
	c.setShape(shape)
	return c
}

// View returns a tensor with a new shape sharing t's storage (no copy).
// Mutating either tensor mutates both; callers relying on views — the
// autodiff graph in particular — must treat the storage as immutable.
// It panics if the element counts differ.
func (t *Tensor) View(shape ...int) *Tensor {
	t.mustLive("View")
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot view %v (%d elems) as %s (%d elems)", t.shape, len(t.data), shapeStr(shape), n))
	}
	v := &Tensor{data: t.data}
	v.setShape(shape)
	return v
}

// ViewLike returns a view of t (shared storage) shaped like ref.
func (t *Tensor) ViewLike(ref *Tensor) *Tensor { return t.View(ref.shape...) }

// ViewInto writes a reshaped view of t (shared storage) into the
// caller-provided header dst — typically an autodiff node's inline tensor
// — and returns dst. dst must be a zero-valued header; the result
// deliberately aliases t's storage, that is the point of a view.
func ViewInto(dst, t *Tensor, shape ...int) *Tensor {
	t.mustLive("ViewInto")
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot view %v (%d elems) as %s (%d elems)", t.shape, len(t.data), shapeStr(shape), n))
	}
	if dst == nil || dst.data != nil {
		panic("tensor: ViewInto needs an empty destination header")
	}
	dst.setShape(shape)
	dst.data = t.data
	return dst
}

// ViewLikeInto is ViewInto with the shape taken from ref; like ViewInto
// the result deliberately aliases t's storage.
func ViewLikeInto(dst, t, ref *Tensor) *Tensor { return ViewInto(dst, t, ref.shape...) }

// RowsView returns rows [lo, hi) of a matrix as a view sharing t's
// storage (row-major rows are contiguous, so no copy is needed).
func (t *Tensor) RowsView(lo, hi int) *Tensor {
	if len(t.shape) != 2 || lo < 0 || hi > t.shape[0] || lo >= hi {
		panic(fmt.Sprintf("tensor: RowsView [%d,%d) of %v", lo, hi, t.shape))
	}
	cols := t.shape[1]
	v := &Tensor{data: t.data[lo*cols : hi*cols]}
	v.shape = v.shapeArr[:2]
	v.shape[0], v.shape[1] = hi-lo, cols
	return v
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.offset(idx)] }

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

// --- elementwise ---

func (t *Tensor) mustSameShape(o *Tensor, op string) {
	if !t.SameShape(o) {
		panic(shapeErr(op, t.shape, o.shape))
	}
}

// Add returns t + o elementwise.
func (t *Tensor) Add(o *Tensor) *Tensor { return AddInto(nil, t, o) }

// AddInPlace accumulates o into t and returns t.
func (t *Tensor) AddInPlace(o *Tensor) *Tensor {
	t.mustSameShape(o, "AddInPlace")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// Sub returns t - o elementwise.
func (t *Tensor) Sub(o *Tensor) *Tensor { return SubInto(nil, t, o) }

// Mul returns the elementwise (Hadamard) product.
func (t *Tensor) Mul(o *Tensor) *Tensor { return MulInto(nil, t, o) }

// Scale returns c * t.
func (t *Tensor) Scale(c float64) *Tensor { return ScaleInto(nil, t, c) }

// ScaleInPlace multiplies every element by c and returns t.
func (t *Tensor) ScaleInPlace(c float64) *Tensor {
	for i := range t.data {
		t.data[i] *= c
	}
	return t
}

// AxpyInPlace computes t += alpha*o in place and returns t.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) *Tensor {
	t.mustSameShape(o, "AxpyInPlace")
	for i, v := range o.data {
		t.data[i] += alpha * v
	}
	return t
}

// ScaleAddInPlace computes t = c*t + o in a single pass — the momentum
// update v ← μv + g — and returns t.
func (t *Tensor) ScaleAddInPlace(c float64, o *Tensor) *Tensor {
	t.mustSameShape(o, "ScaleAddInPlace")
	for i, v := range o.data {
		t.data[i] = c*t.data[i] + v
	}
	return t
}

// Neg returns -t.
func (t *Tensor) Neg() *Tensor { return t.Scale(-1) }

// Apply returns a new tensor with f applied to every element.
func (t *Tensor) Apply(f func(float64) float64) *Tensor {
	return ApplyInto(nil, t, f)
}

// Pow returns t with every element raised to p. Negative bases with
// non-integer exponents yield NaN, as in math.Pow.
func (t *Tensor) Pow(p float64) *Tensor { return PowInto(nil, t, p) }

// Exp returns elementwise e^t.
func (t *Tensor) Exp() *Tensor { return t.Apply(math.Exp) }

// Log returns elementwise natural log.
func (t *Tensor) Log() *Tensor { return t.Apply(math.Log) }

// ReLU returns elementwise max(t, 0).
func (t *Tensor) ReLU() *Tensor {
	return t.Apply(func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
}

// ReLUMask returns a tensor of 1s where t > 0 and 0s elsewhere.
func (t *Tensor) ReLUMask() *Tensor {
	return t.Apply(func(v float64) float64 {
		if v > 0 {
			return 1
		}
		return 0
	})
}

// --- reductions and broadcasting ---

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Dot returns the inner product of two same-shape tensors.
func (t *Tensor) Dot(o *Tensor) float64 {
	t.mustSameShape(o, "Dot")
	s := 0.0
	for i, v := range t.data {
		s += v * o.data[i]
	}
	return s
}

// Norm returns the Euclidean norm of all elements.
func (t *Tensor) Norm() float64 { return math.Sqrt(t.Dot(t)) }

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMaxRows treats t as [R, C] and returns the argmax column per row.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows requires a matrix, got %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		best, bestV := 0, math.Inf(-1)
		for c := 0; c < cols; c++ {
			if v := t.data[r*cols+c]; v > bestV {
				best, bestV = c, v
			}
		}
		out[r] = best
	}
	return out
}

// SumAxes sums over the given axes, keeping them as size-1 dimensions.
// Axes must be sorted, unique and in range.
func (t *Tensor) SumAxes(axes ...int) *Tensor {
	return SumAxesInto(nil, t, axes...)
}

// BroadcastTo expands size-1 dimensions of t to match shape. The ranks
// must be equal and every non-1 dimension must already match.
func (t *Tensor) BroadcastTo(shape ...int) *Tensor {
	return BroadcastToInto(nil, t, shape...)
}

// incIndex advances a row-major multi-index by one position.
func incIndex(idx, shape []int) {
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < shape[i] {
			return
		}
		idx[i] = 0
	}
}

// --- linear algebra ---

// MatMul returns the matrix product of t [M,K] and o [K,N]. Large
// products run row-parallel; see MatMulInto.
func (t *Tensor) MatMul(o *Tensor) *Tensor { return MatMulInto(nil, t, o) }

// Transpose returns the transpose of a matrix.
func (t *Tensor) Transpose() *Tensor { return TransposeInto(nil, t) }

// --- helpers ---

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic("tensor: non-positive dimension in shape " + shapeStr(shape))
		}
		n *= s
	}
	return n
}

func cloneInts(s []int) []int { return append([]int(nil), s...) }

// shapeStr formats a shape like fmt's %v without forcing the slice to
// escape to the heap: the hot kernels pass stack-allocated shape scratch
// through checkShape/prepDst, and an fmt call on the panic path would
// otherwise make every call site allocate.
func shapeStr(s []int) string {
	b := make([]byte, 0, 24)
	b = append(b, '[')
	for i, v := range s {
		if i > 0 {
			b = append(b, ' ')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	b = append(b, ']')
	return string(b)
}
