package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func tensorsClose(t *testing.T, a, b *Tensor, tol float64) {
	t.Helper()
	if !a.SameShape(b) {
		t.Fatalf("shape mismatch: %v vs %v", a.Shape(), b.Shape())
	}
	for i := range a.Data() {
		if !almostEqual(a.Data()[i], b.Data()[i], tol) {
			t.Fatalf("element %d differs: %g vs %g", i, a.Data()[i], b.Data()[i])
		}
	}
}

func TestNewAndShape(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Dims() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 1, 2)
	if got := x.At(1, 2); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	if got := x.Data()[1*4+2]; got != 7.5 {
		t.Fatalf("row-major offset wrong: %g", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y := x.Clone()
	y.Set(99, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestReshapeKeepsOrderAndCopies(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(1, 0) != 3 {
		t.Fatalf("reshape order wrong: %g", y.At(1, 0))
	}
	y.Set(0, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Reshape must copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, -2, 3, -4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	tests := []struct {
		name string
		got  *Tensor
		want []float64
	}{
		{"Add", a.Add(b), []float64{6, 4, 10, 4}},
		{"Sub", a.Sub(b), []float64{-4, -8, -4, -12}},
		{"Mul", a.Mul(b), []float64{5, -12, 21, -32}},
		{"Scale", a.Scale(2), []float64{2, -4, 6, -8}},
		{"Neg", a.Neg(), []float64{-1, 2, -3, 4}},
		{"ReLU", a.ReLU(), []float64{1, 0, 3, 0}},
		{"ReLUMask", a.ReLUMask(), []float64{1, 0, 1, 0}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tensorsClose(t, tc.got, FromSlice(tc.want, 2, 2), 1e-12)
		})
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	a.AddInPlace(b)
	tensorsClose(t, a, FromSlice([]float64{4, 6}, 2), 0)
	a.AxpyInPlace(0.5, b)
	tensorsClose(t, a, FromSlice([]float64{5.5, 8}, 2), 1e-12)
	a.ScaleInPlace(2)
	tensorsClose(t, a, FromSlice([]float64{11, 16}, 2), 1e-12)
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Add(New(4))
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := a.MatMul(b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	tensorsClose(t, got, want, 1e-12)
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	tensorsClose(t, a.MatMul(id), a, 1e-12)
	tensorsClose(t, id.MatMul(a), a, 1e-12)
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	got := a.Transpose()
	want := FromSlice([]float64{1, 4, 2, 5, 3, 6}, 3, 2)
	tensorsClose(t, got, want, 0)
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ.
func TestMatMulTransposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		lhs := a.MatMul(b).Transpose()
		rhs := b.Transpose().MatMul(a.Transpose())
		if !lhs.SameShape(rhs) {
			return false
		}
		for i := range lhs.Data() {
			if !almostEqual(lhs.Data()[i], rhs.Data()[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A·(B+C) = A·B + A·C.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		c := Randn(r, 1, k, n)
		lhs := a.MatMul(b.Add(c))
		rhs := a.MatMul(b).Add(a.MatMul(c))
		for i := range lhs.Data() {
			if !almostEqual(lhs.Data()[i], rhs.Data()[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSumAxes(t *testing.T) {
	// [2,2,2] summed over axis 1.
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 2, 2, 2)
	got := x.SumAxes(1)
	want := FromSlice([]float64{4, 6, 12, 14}, 2, 1, 2)
	tensorsClose(t, got, want, 1e-12)

	all := x.SumAxes(0, 1, 2)
	if all.Len() != 1 || all.Data()[0] != 36 {
		t.Fatalf("full reduce = %v", all.Data())
	}
}

func TestSumAxesValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unsorted axes")
		}
	}()
	New(2, 2).SumAxes(1, 0)
}

func TestBroadcastTo(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 1, 2)
	got := x.BroadcastTo(3, 2)
	want := FromSlice([]float64{1, 2, 1, 2, 1, 2}, 3, 2)
	tensorsClose(t, got, want, 0)
}

func TestBroadcastToRejectsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).BroadcastTo(3, 2)
}

// Property: for any tensor x and broadcastable shape, sum over broadcast
// axes of BroadcastTo(x) equals x scaled by the expansion factor —
// i.e. SumAxes is the adjoint of BroadcastTo.
func TestBroadcastSumAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := 1+r.Intn(3), 1+r.Intn(3)
		x := Randn(r, 1, 1, b)
		y := x.BroadcastTo(a, b).SumAxes(0)
		for i := range y.Data() {
			if !almostEqual(y.Data()[i], x.Data()[i]*float64(a), 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionsAndScalars(t *testing.T) {
	x := FromSlice([]float64{3, -4}, 2)
	if x.Sum() != -1 {
		t.Fatalf("Sum = %g", x.Sum())
	}
	if got := x.Dot(x); got != 25 {
		t.Fatalf("Dot = %g", got)
	}
	if got := x.Norm(); got != 5 {
		t.Fatalf("Norm = %g", got)
	}
	if got := x.Max(); got != 3 {
		t.Fatalf("Max = %g", got)
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float64{0, 2, 1, 5, 4, 3}, 2, 3)
	got := x.ArgMaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestApplyPowExpLog(t *testing.T) {
	x := FromSlice([]float64{1, 4, 9}, 3)
	tensorsClose(t, x.Pow(0.5), FromSlice([]float64{1, 2, 3}, 3), 1e-12)
	y := FromSlice([]float64{0, 1}, 2)
	tensorsClose(t, y.Exp(), FromSlice([]float64{1, math.E}, 2), 1e-12)
	tensorsClose(t, y.Exp().Log(), y, 1e-12)
}

func TestRandnDeterministicPerSeed(t *testing.T) {
	a := Randn(rand.New(rand.NewSource(7)), 1, 5)
	b := Randn(rand.New(rand.NewSource(7)), 1, 5)
	tensorsClose(t, a, b, 0)
}

func TestUniformRange(t *testing.T) {
	u := Uniform(rand.New(rand.NewSource(3)), -2, 5, 100)
	for _, v := range u.Data() {
		if v < -2 || v >= 5 {
			t.Fatalf("value %g out of range", v)
		}
	}
}
