package tensor

import "math"

// This file implements the streaming-statistics kernels behind the
// numerics health monitor (internal/telemetry/health). One blocked pass
// over a tensor yields min/max/mean/variance (Welford-style moments),
// the L2 norm, and NaN/Inf counts — everything the divergence watchdog
// needs — without allocating, so the kernels are safe on hot paths.
//
// Blocking: the data is processed in fixed-size blocks. Within a block
// the mean is computed first and the second moment accumulated against
// it on a second cache-resident pass, then the block is merged into the
// running moments with the parallel-Welford combination of Chan et al.
// This keeps the update O(1) per block instead of O(1) per element for
// the numerically-sensitive part, and matches the blocked structure of
// the other kernels in this package.

// statsBlock is the number of elements folded per moment merge. Chosen
// so a block of float64s stays L1-resident on every target we build for.
const statsBlock = 512

// Stats holds single-pass summary statistics of a tensor. Min, Max,
// Mean, and M2 describe the FINITE values only; NaNs and Infs count the
// non-finite elements separately so a poisoned tensor still yields a
// meaningful norm of its finite part plus an exact poison count.
// The zero value is an empty accumulator.
type Stats struct {
	Count int // finite elements observed
	NaNs  int // NaN elements
	Infs  int // ±Inf elements
	Min   float64
	Max   float64
	Mean  float64
	M2    float64 // sum of squared deviations from Mean (Welford)
	SumSq float64 // sum of squares of finite elements
}

// Var returns the population variance of the finite elements (0 with
// fewer than two observations).
func (s *Stats) Var() float64 {
	if s.Count < 2 {
		return 0
	}
	return s.M2 / float64(s.Count)
}

// L2 returns the Euclidean norm of the finite elements.
func (s *Stats) L2() float64 { return math.Sqrt(s.SumSq) }

// Finite reports whether every observed element was finite.
func (s *Stats) Finite() bool { return s.NaNs == 0 && s.Infs == 0 }

// NonFinite returns the number of NaN or ±Inf elements observed.
func (s *Stats) NonFinite() int { return s.NaNs + s.Infs }

// reset returns the accumulator to its empty state.
func (s *Stats) reset() {
	*s = Stats{Min: math.Inf(1), Max: math.Inf(-1)}
}

// merge folds one block's moments (count n, mean m, second moment m2)
// into the running statistics using the Chan et al. pairwise update.
func (s *Stats) merge(n int, m, m2 float64) {
	if n == 0 {
		return
	}
	if s.Count == 0 {
		s.Count, s.Mean, s.M2 = n, m, m2
		return
	}
	na, nb := float64(s.Count), float64(n)
	delta := m - s.Mean
	tot := na + nb
	s.Mean += delta * nb / tot
	s.M2 += m2 + delta*delta*na*nb/tot
	s.Count += n
}

// StatsInto computes summary statistics of t in one blocked pass and
// stores them in dst, which must be non-nil; any prior contents are
// overwritten. It performs no allocation. For an empty tensor the
// result has Count 0, Min +Inf, and Max -Inf.
func StatsInto(dst *Stats, t *Tensor) {
	dst.reset()
	data := t.data
	for base := 0; base < len(data); base += statsBlock {
		end := base + statsBlock
		if end > len(data) {
			end = len(data)
		}
		blk := data[base:end]

		// First pass: classify elements, accumulate the block sum of the
		// finite ones (and their squares) and the running min/max.
		sum, sumsq := 0.0, 0.0
		n := 0
		for _, v := range blk {
			if v != v { // NaN
				dst.NaNs++
				continue
			}
			if math.IsInf(v, 0) {
				dst.Infs++
				continue
			}
			n++
			sum += v
			sumsq += v * v
			if v < dst.Min {
				dst.Min = v
			}
			if v > dst.Max {
				dst.Max = v
			}
		}
		dst.SumSq += sumsq
		if n == 0 {
			continue
		}

		// Second, cache-resident pass: second moment about the block mean.
		mean := sum / float64(n)
		m2 := 0.0
		for _, v := range blk {
			if v != v || math.IsInf(v, 0) {
				continue
			}
			d := v - mean
			m2 += d * d
		}
		dst.merge(n, mean, m2)
	}
}

// NormStats is the cheap form of StatsInto for callers that only need
// the L2 norm and the poison count: one blocked pass returning the
// Euclidean norm of the finite elements plus NaN and ±Inf counts.
// It performs no allocation.
func NormStats(t *Tensor) (l2 float64, nans, infs int) {
	sumsq := 0.0
	for _, v := range t.data {
		if v != v {
			nans++
			continue
		}
		if math.IsInf(v, 0) {
			infs++
			continue
		}
		sumsq += v * v
	}
	return math.Sqrt(sumsq), nans, infs
}
