package tensor_test

import (
	"math/rand"
	"testing"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/data"
	"quickdrop/internal/distill"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/telemetry/health"
	"quickdrop/internal/tensor"
)

// The micro-benchmarks below guard the allocation behaviour of the compute
// backbone: run with `go test -bench=. -benchmem ./internal/tensor` and
// compare allocs/op across changes. BenchmarkGradientMatchingStep is the
// acceptance metric for the destination-passing refactor.

func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 64, 96)
	y := tensor.Randn(rng, 1, 96, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.MatMul(y)
	}
}

// BenchmarkMatMulInto is the destination-passing counterpart: with a
// reused destination the steady state allocates nothing.
func BenchmarkMatMulInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 64, 96)
	y := tensor.Randn(rng, 1, 96, 48)
	dst := tensor.New(64, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMulInto(dst, x, y)
	}
}

// BenchmarkMatMulParallel is large enough to clear the row-sharding
// threshold, exercising the GOMAXPROCS-parallel kernel.
func BenchmarkMatMulParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 1, 128, 128)
	y := tensor.Randn(rng, 1, 128, 128)
	dst := tensor.New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.MatMulInto(dst, x, y)
	}
}

func benchGeom() tensor.ConvGeom {
	return tensor.ConvGeom{Kernel: 3, Stride: 1, Pad: 1, InH: 16, InW: 16, Channel: 8}
}

func BenchmarkIm2col(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := benchGeom()
	x := tensor.Randn(rng, 1, 8, g.InH, g.InW, g.Channel)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.Im2col(x, g)
	}
}

// BenchmarkIm2colInto reuses one patch-matrix buffer across extractions.
func BenchmarkIm2colInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := benchGeom()
	x := tensor.Randn(rng, 1, 8, g.InH, g.InW, g.Channel)
	dst := tensor.New(8*g.OutH()*g.OutW(), g.Kernel*g.Kernel*g.Channel)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tensor.Im2colInto(dst, x, g)
	}
}

// BenchmarkConv2DForwardBackward measures one forward pass plus a full
// first-order backward through a small ConvNet (the inner loop of both FL
// training and gradient matching).
func BenchmarkConv2DForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	model := nn.NewConvNet(nn.ConvNetConfig{
		InputH: 8, InputW: 8, InputC: 3, Classes: 4, Width: 8, Depth: 2,
	}, rng)
	x := tensor.Randn(rng, 1, 4, 8, 8, 3)
	oneHot := nn.OneHot([]int{0, 1, 2, 3}, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bound := model.Bind()
		loss := nn.CrossEntropy(bound.Forward(ad.Const(x)), oneHot)
		_ = ad.MustGrad(loss, bound.ParamVars())
	}
}

// BenchmarkGradientMatchingStep measures one full in-situ distillation
// update: real gradient, synthetic gradient with create-graph, grouped
// cosine distance, and the second-order gradient w.r.t. the pixels.
func BenchmarkGradientMatchingStep(b *testing.B) {
	m, ctx := benchMatcher()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchStep(ctx)
	}
}

func benchMatcher() (*distill.Matcher, fl.StepContext) {
	rng := rand.New(rand.NewSource(1))
	spec := data.Spec{Name: "bench", H: 8, W: 8, C: 3, Classes: 4,
		TrainPerClass: 8, TestPerClass: 0, Noise: 0.3, Jitter: 1}
	ds, _ := data.Generate(spec, 7)
	model := nn.NewConvNet(nn.ConvNetConfig{
		InputH: 8, InputW: 8, InputC: ds.C, Classes: 4, Width: 8, Depth: 2,
	}, rng)
	cfg := distill.DefaultConfig()
	cfg.Scale = 8
	cfg.RealBatch = 4
	m := distill.NewMatcher(cfg, data.NewCohort([]*data.Dataset{ds}), rng)
	ctx := fl.StepContext{
		Round: 0, Step: 0, ClientID: 0,
		Model: model, Client: ds, Rng: rng,
	}
	return m, ctx
}

// BenchmarkGradientMatchingStepHealth is the same workload with the
// numerics health monitor attached at its default sampling cadence —
// the overhead gate: bench_compare.sh fails if this exceeds the plain
// step by more than 1%.
func BenchmarkGradientMatchingStepHealth(b *testing.B) {
	m, ctx := benchMatcher()
	mon := health.New(health.Config{}, nil)
	m.Health = mon
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MatchStep(ctx)
	}
}

// BenchmarkNormStats pins the cost of the single-pass norm + poison
// count kernel on a model-layer-sized tensor.
func BenchmarkNormStats(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t := tensor.Randn(rng, 1, 64, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink, _, _ = tensor.NormStats(t)
	}
}

// BenchmarkStatsInto measures the full moment kernel on the same shape.
func BenchmarkStatsInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	t := tensor.Randn(rng, 1, 64, 1024)
	var s tensor.Stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.StatsInto(&s, t)
	}
	sink = s.Mean
}

// sink defeats dead-code elimination of the benchmarked kernels.
var sink float64
