package tensor

import (
	"fmt"
	"sync"
)

// Pool is a sync.Pool-backed arena of tensor buffers keyed by element
// count. It recycles the transient tensors of forward/backward passes —
// which otherwise dominate allocation in the gradient-matching hot path —
// without any global free list or locking beyond sync.Pool's own.
//
// Ownership rules (see DESIGN.md, "Compute backbone"):
//
//   - Only the caller that obtained a tensor from Get may Put it back, and
//     only once, after every reference to it (including views and autodiff
//     graph nodes holding it) is dead.
//   - Tensors held by a live autodiff graph must never be Put: graph-held
//     tensors are immutable for the graph's lifetime.
//   - Put poisons the returned tensor (its shape becomes empty), so
//     accidental use-after-Put panics on indexing rather than corrupting
//     a later borrower.
//
// The zero value is ready to use. The package-level Get/Put operate on a
// shared default pool.
type Pool struct {
	classes sync.Map // element count -> *sync.Pool of *Tensor
}

func (p *Pool) classFor(n int) *sync.Pool {
	if sp, ok := p.classes.Load(n); ok {
		return sp.(*sync.Pool)
	}
	sp, _ := p.classes.LoadOrStore(n, &sync.Pool{})
	return sp.(*sync.Pool)
}

// Get returns a zero-filled tensor of the given shape, reusing pooled
// storage of matching element count when available.
//
//lint:resource acquire poolbuf
func (p *Pool) Get(shape ...int) *Tensor {
	n := checkShape(shape)
	if v := p.classFor(n).Get(); v != nil {
		t := v.(*Tensor)
		t.setShape(shape)
		t.Zero()
		return t
	}
	return New(shape...)
}

// Put recycles t's storage into the pool and poisons t against further
// use. Putting a tensor whose storage is still referenced elsewhere (a
// view, a graph node) corrupts the next borrower; see the ownership rules
// above. A nil or empty tensor is ignored.
//
//lint:resource release poolbuf
func (p *Pool) Put(t *Tensor) {
	if t == nil || len(t.data) == 0 {
		return
	}
	// The recycled handle must not share t's inline shape array: t is
	// poisoned, and a later Get would otherwise resurrect t's storage
	// under an aliased shape.
	recycled := &Tensor{data: t.data}
	t.shape = nil
	t.data = nil
	p.classFor(len(recycled.data)).Put(recycled)
}

var defaultPool Pool

// Get returns a zero-filled tensor from the package-level pool.
//
//lint:resource acquire poolbuf
func Get(shape ...int) *Tensor { return defaultPool.Get(shape...) }

// Put recycles a tensor into the package-level pool. See Pool.Put for the
// ownership rules.
//
//lint:resource release poolbuf
func Put(t *Tensor) { defaultPool.Put(t) }

// GetLike returns a zeroed pooled tensor with the same shape as t.
//
//lint:resource acquire poolbuf
func GetLike(t *Tensor) *Tensor { return defaultPool.Get(t.shape...) }

// PutAll recycles every tensor in ts into the package-level pool.
//
//lint:resource release poolbuf
func PutAll(ts []*Tensor) {
	for _, t := range ts {
		Put(t)
	}
}

// mustLive panics if t has been poisoned by Put. It is used by methods
// whose misuse after Put would otherwise fail with a confusing index
// panic far from the cause.
func (t *Tensor) mustLive(op string) {
	if len(t.shape) == 0 {
		panic(fmt.Sprintf("tensor: %s on a tensor already returned to the pool", op))
	}
}
