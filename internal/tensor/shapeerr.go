package tensor

import "strconv"

// This file is the single home of every shape-panic message in the
// package. The static shapecheck analyzer (internal/lint) mirrors these
// formats verbatim, so one grep for a message fragment finds both the
// runtime panic site and the corresponding lint diagnostic. Changing a
// format here without updating the analyzer's model (and its golden
// fixtures) breaks that correspondence — the lint suite's own tests
// guard it.

// shapeErr builds the canonical same-shape mismatch message:
//
//	tensor: <op> shape mismatch [2 3] vs [3 2]
//
// Every kernel that requires operands of identical shape panics with
// exactly this wording (via mustSameShape).
func shapeErr(op string, got, want []int) string {
	return "tensor: " + op + " shape mismatch " + shapeStr(got) + " vs " + shapeStr(want)
}

// dstShapeErr is the destination-capacity message of prepDst: a live
// destination must hold exactly the result's element count.
func dstShapeErr(op string, got, want []int) string {
	return "tensor: " + op + " destination " + shapeStr(got) + " cannot hold result " + shapeStr(want)
}

// bcastRankErr reports a broadcast operand whose rank differs from the
// full shape's.
func bcastRankErr(small, full []int) string {
	return "tensor: broadcast rank mismatch " + shapeStr(small) + " vs " + shapeStr(full)
}

// bcastShapeErr reports a broadcast operand dimension that is neither 1
// nor the full dimension.
func bcastShapeErr(small, full []int) string {
	return "tensor: cannot broadcast " + shapeStr(small) + " against " + shapeStr(full)
}

// matMulRankErr reports a matrix-product operand that is not rank 2.
func matMulRankErr(a, b []int) string {
	return "tensor: MatMul requires matrices, got " + shapeStr(a) + " and " + shapeStr(b)
}

// matMulDimErr reports contraction dimensions that do not agree.
func matMulDimErr(a, b []int, ta, tb bool) string {
	return "tensor: MatMul inner dims differ: " + shapeStr(a) + " x " + shapeStr(b) +
		" (ta=" + strconv.FormatBool(ta) + " tb=" + strconv.FormatBool(tb) + ")"
}
