package tensor

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvGeomOutputSize(t *testing.T) {
	tests := []struct {
		name   string
		g      ConvGeom
		oh, ow int
	}{
		{"same-pad-3x3", ConvGeom{Kernel: 3, Stride: 1, Pad: 1, InH: 8, InW: 8, Channel: 3}, 8, 8},
		{"valid-3x3", ConvGeom{Kernel: 3, Stride: 1, Pad: 0, InH: 8, InW: 8, Channel: 1}, 6, 6},
		{"pool-2x2", ConvGeom{Kernel: 2, Stride: 2, Pad: 0, InH: 8, InW: 8, Channel: 4}, 4, 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if tc.g.OutH() != tc.oh || tc.g.OutW() != tc.ow {
				t.Fatalf("out = %dx%d, want %dx%d", tc.g.OutH(), tc.g.OutW(), tc.oh, tc.ow)
			}
		})
	}
}

func TestConvGeomValidateRejects(t *testing.T) {
	bad := []ConvGeom{
		{Kernel: 0, Stride: 1, Pad: 0, InH: 4, InW: 4, Channel: 1},
		{Kernel: 3, Stride: 0, Pad: 0, InH: 4, InW: 4, Channel: 1},
		{Kernel: 9, Stride: 1, Pad: 0, InH: 4, InW: 4, Channel: 1},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("geometry %+v should be invalid", g)
		}
	}
}

func TestIm2colKnownValues(t *testing.T) {
	// 1x3x3x1 input, 2x2 kernel, stride 1, no pad → 4 patches.
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3, 1)
	g := ConvGeom{Kernel: 2, Stride: 1, Pad: 0, InH: 3, InW: 3, Channel: 1}
	got := Im2col(x, g)
	want := FromSlice([]float64{
		1, 2, 4, 5,
		2, 3, 5, 6,
		4, 5, 7, 8,
		5, 6, 8, 9,
	}, 4, 4)
	tensorsClose(t, got, want, 0)
}

func TestIm2colPadding(t *testing.T) {
	// Single pixel with pad 1 and 3x3 kernel: centre patch sees the pixel
	// in the middle, corners see it in the corner positions.
	x := FromSlice([]float64{5}, 1, 1, 1, 1)
	g := ConvGeom{Kernel: 3, Stride: 1, Pad: 1, InH: 1, InW: 1, Channel: 1}
	got := Im2col(x, g)
	if got.Dim(0) != 1 || got.Dim(1) != 9 {
		t.Fatalf("shape %v", got.Shape())
	}
	for i, v := range got.Data() {
		want := 0.0
		if i == 4 { // kernel centre
			want = 5
		}
		if v != want {
			t.Fatalf("col %d = %g, want %g", i, v, want)
		}
	}
}

func TestIm2colChannelOrdering(t *testing.T) {
	// Two channels; row layout must be (kh, kw, c).
	x := FromSlice([]float64{1, 10, 2, 20, 3, 30, 4, 40}, 1, 2, 2, 2)
	g := ConvGeom{Kernel: 2, Stride: 1, Pad: 0, InH: 2, InW: 2, Channel: 2}
	got := Im2col(x, g)
	want := FromSlice([]float64{1, 10, 2, 20, 3, 30, 4, 40}, 1, 8)
	tensorsClose(t, got, want, 0)
}

// Property: Col2im is the exact adjoint of Im2col:
// ⟨Im2col(x), y⟩ = ⟨x, Col2im(y)⟩ for all x, y.
func TestIm2colCol2imAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := ConvGeom{
			Kernel:  1 + r.Intn(3),
			Stride:  1 + r.Intn(2),
			Pad:     r.Intn(2),
			InH:     3 + r.Intn(3),
			InW:     3 + r.Intn(3),
			Channel: 1 + r.Intn(2),
		}
		if g.Validate() != nil {
			return true // skip degenerate geometries
		}
		b := 1 + r.Intn(2)
		x := Randn(r, 1, b, g.InH, g.InW, g.Channel)
		cols := Im2col(x, g)
		y := Randn(r, 1, cols.Dim(0), cols.Dim(1))
		lhs := cols.Dot(y)
		rhs := x.Dot(Col2im(y, b, g))
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2imAccumulatesOverlaps(t *testing.T) {
	// Overlapping 2x2 patches on a 3x3 grid: the centre pixel is covered by
	// all 4 patches; setting all cols to 1 counts patch coverage.
	g := ConvGeom{Kernel: 2, Stride: 1, Pad: 0, InH: 3, InW: 3, Channel: 1}
	cols := Ones(4, 4)
	got := Col2im(cols, 1, g)
	want := FromSlice([]float64{
		1, 2, 1,
		2, 4, 2,
		1, 2, 1,
	}, 1, 3, 3, 1)
	tensorsClose(t, got, want, 0)
}

func TestIm2colShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := ConvGeom{Kernel: 2, Stride: 1, Pad: 0, InH: 4, InW: 4, Channel: 1}
	Im2col(New(1, 3, 3, 1), g)
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := Randn(rng, 2.5, 3, 4, 5)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tensorsClose(t, x, y, 0)
}

func TestReadFromRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on bad magic")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty input")
	}
}

// Property: with stride == kernel (non-overlapping windows, no padding)
// Col2im(Im2col(x)) reconstructs x exactly — the patches partition the
// image.
func TestIm2colPartitionRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(3)
		tiles := 1 + r.Intn(3)
		g := ConvGeom{Kernel: k, Stride: k, Pad: 0, InH: k * tiles, InW: k * tiles, Channel: 1 + r.Intn(2)}
		b := 1 + r.Intn(2)
		x := Randn(r, 1, b, g.InH, g.InW, g.Channel)
		back := Col2im(Im2col(x, g), b, g)
		for i := range x.Data() {
			if x.Data()[i] != back.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
