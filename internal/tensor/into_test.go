package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// randT returns a deterministic pseudo-random tensor for kernel tests.
func randT(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	d := t.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return t
}

func equalTensors(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: element %d = %g, want %g", name, i, gd[i], wd[i])
		}
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

// intoCase describes one destination-passing kernel: how to run it with an
// arbitrary dst, which inputs dst may legally alias, and which inputs must
// panic when aliased. The harness cross-checks the nil-dst (allocating)
// result against a pool-provided dst and every legal aliased dst.
type intoCase struct {
	name     string
	inputs   []*Tensor
	run      func(dst *Tensor, in []*Tensor) *Tensor
	aliasOK  []int // indices of inputs dst may alias (same element count)
	aliasBad []int // indices of inputs that must panic when dst aliases them
}

func runIntoCases(t *testing.T, cases []intoCase) {
	t.Helper()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Reference: allocating form (nil dst).
			want := c.run(nil, c.inputs)

			// Pooled dst: borrow a buffer of the result's element count but a
			// different (flat) shape; the kernel must adopt the result shape.
			pooled := Get(want.Len())
			got := c.run(pooled, c.inputs)
			if got != pooled {
				t.Fatalf("kernel did not return its destination")
			}
			equalTensors(t, "pooled dst", got, want)
			Put(pooled)

			// Zero-header dst (the autodiff inline-node path): storage is
			// allocated on demand.
			var hdr Tensor
			equalTensors(t, "zero-header dst", c.run(&hdr, c.inputs), want)

			// Legal aliasing: dst sharing an input's storage must still
			// produce the reference result.
			for _, idx := range c.aliasOK {
				in := make([]*Tensor, len(c.inputs))
				for i, v := range c.inputs {
					in[i] = v.Clone()
				}
				equalTensors(t, "aliased dst", c.run(in[idx], in), want)
			}

			// Illegal aliasing: kernels that read after writing must detect
			// a shared destination and panic rather than corrupt.
			for _, idx := range c.aliasBad {
				in := make([]*Tensor, len(c.inputs))
				for i, v := range c.inputs {
					in[i] = v.Clone()
				}
				if in[idx].Len() != want.Len() {
					continue // cannot alias buffers of different size
				}
				mustPanic(t, "alias detection", func() { c.run(in[idx].View(want.Shape()...), in) })
			}
		})
	}
}

func TestIntoKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randT(rng, 4, 6)
	b := randT(rng, 4, 6)
	row := randT(rng, 6)
	sq := randT(rng, 5, 5)
	full := randT(rng, 3, 4, 4, 2)  // [B,H,W,C]
	chans := randT(rng, 1, 1, 1, 2) // broadcast over all but channels
	batch := randT(rng, 3, 1, 1, 1) // broadcast over all but batch
	pos := ApplyInto(nil, randT(rng, 4, 6), math.Abs)

	cases := []intoCase{
		{
			name:   "AddInto",
			inputs: []*Tensor{a, b},
			run:    func(d *Tensor, in []*Tensor) *Tensor { return AddInto(d, in[0], in[1]) },
			aliasOK: []int{
				0, 1,
			},
		},
		{
			name:    "SubInto",
			inputs:  []*Tensor{a, b},
			run:     func(d *Tensor, in []*Tensor) *Tensor { return SubInto(d, in[0], in[1]) },
			aliasOK: []int{0, 1},
		},
		{
			name:    "MulInto",
			inputs:  []*Tensor{a, b},
			run:     func(d *Tensor, in []*Tensor) *Tensor { return MulInto(d, in[0], in[1]) },
			aliasOK: []int{0, 1},
		},
		{
			name:    "ScaleInto",
			inputs:  []*Tensor{a},
			run:     func(d *Tensor, in []*Tensor) *Tensor { return ScaleInto(d, in[0], -2.5) },
			aliasOK: []int{0},
		},
		{
			name:    "AddScaledInto",
			inputs:  []*Tensor{a, b},
			run:     func(d *Tensor, in []*Tensor) *Tensor { return AddScaledInto(d, in[0], 0.75, in[1]) },
			aliasOK: []int{0, 1},
		},
		{
			name:    "ApplyInto",
			inputs:  []*Tensor{a},
			run:     func(d *Tensor, in []*Tensor) *Tensor { return ApplyInto(d, in[0], math.Exp) },
			aliasOK: []int{0},
		},
		{
			name:    "AddConstInto",
			inputs:  []*Tensor{a},
			run:     func(d *Tensor, in []*Tensor) *Tensor { return AddConstInto(d, in[0], 3.25) },
			aliasOK: []int{0},
		},
		{
			name:    "PowInto",
			inputs:  []*Tensor{pos},
			run:     func(d *Tensor, in []*Tensor) *Tensor { return PowInto(d, in[0], 0.5) },
			aliasOK: []int{0},
		},
		{
			name:    "AddRowInto",
			inputs:  []*Tensor{a, row},
			run:     func(d *Tensor, in []*Tensor) *Tensor { return AddRowInto(d, in[0], in[1]) },
			aliasOK: []int{0},
		},
		{
			name:     "TransposeInto",
			inputs:   []*Tensor{sq},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return TransposeInto(d, in[0]) },
			aliasBad: []int{0},
		},
		{
			name:     "SumAxesInto",
			inputs:   []*Tensor{full},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return SumAxesInto(d, in[0], 1, 2) },
			aliasBad: []int{0},
		},
		{
			name:     "SumLikeInto",
			inputs:   []*Tensor{full, chans},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return SumLikeInto(d, in[0], in[1]) },
			aliasBad: []int{0},
		},
		{
			name:     "BroadcastToInto",
			inputs:   []*Tensor{chans},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return BroadcastToInto(d, in[0], 3, 4, 4, 2) },
			aliasBad: []int{0},
		},
		{
			name:     "BroadcastLikeInto",
			inputs:   []*Tensor{batch, full},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return BroadcastLikeInto(d, in[0], in[1]) },
			aliasBad: []int{0},
		},
		{
			name:     "AddBcastInto",
			inputs:   []*Tensor{full, chans},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return AddBcastInto(d, in[0], in[1]) },
			aliasOK:  []int{0},
			aliasBad: []int{1},
		},
		{
			name:     "SubBcastInto",
			inputs:   []*Tensor{full, batch},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return SubBcastInto(d, in[0], in[1]) },
			aliasOK:  []int{0},
			aliasBad: []int{1},
		},
		{
			name:     "MulBcastInto",
			inputs:   []*Tensor{full, chans},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return MulBcastInto(d, in[0], in[1]) },
			aliasOK:  []int{0},
			aliasBad: []int{1},
		},
		{
			name:     "MulSumInto",
			inputs:   []*Tensor{full, full.Clone()},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return MulSumInto(d, in[0], in[1], 1, 2) },
			aliasBad: []int{0, 1},
		},
		{
			name:     "MulSumLikeInto",
			inputs:   []*Tensor{full, full.Clone(), batch},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return MulSumLikeInto(d, in[0], in[1], in[2]) },
			aliasBad: []int{0, 1},
		},
		{
			// Square operands so the result matches the input element count
			// and the alias-detection branch actually executes.
			name:     "MatMulInto",
			inputs:   []*Tensor{randT(rng, 5, 5), randT(rng, 5, 5)},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return MatMulInto(d, in[0], in[1]) },
			aliasBad: []int{0, 1},
		},
		{
			name:     "MatMulNTInto",
			inputs:   []*Tensor{randT(rng, 5, 5), randT(rng, 5, 5)},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return MatMulNTInto(d, in[0], in[1]) },
			aliasBad: []int{0, 1},
		},
		{
			name:     "MatMulTNInto",
			inputs:   []*Tensor{randT(rng, 5, 5), randT(rng, 5, 5)},
			run:      func(d *Tensor, in []*Tensor) *Tensor { return MatMulTNInto(d, in[0], in[1]) },
			aliasBad: []int{0, 1},
		},
		{
			name:   "Im2colInto",
			inputs: []*Tensor{full},
			run: func(d *Tensor, in []*Tensor) *Tensor {
				return Im2colInto(d, in[0], ConvGeom{Kernel: 3, Stride: 1, Pad: 1, InH: 4, InW: 4, Channel: 2})
			},
		},
		{
			name:   "Col2imInto",
			inputs: []*Tensor{randT(rng, 48, 18)},
			run: func(d *Tensor, in []*Tensor) *Tensor {
				return Col2imInto(d, in[0], 3, ConvGeom{Kernel: 3, Stride: 1, Pad: 1, InH: 4, InW: 4, Channel: 2})
			},
		},
	}
	runIntoCases(t, cases)
}

// TestIntoMatchesAllocating cross-checks the Into kernels against the
// allocating Tensor methods they back, on independently generated inputs.
func TestIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randT(rng, 3, 7)
	b := randT(rng, 3, 7)
	m := randT(rng, 3, 5)
	n := randT(rng, 5, 4)

	equalTensors(t, "Add", AddInto(Get(21), a, b), a.Add(b))
	equalTensors(t, "Sub", SubInto(Get(21), a, b), a.Sub(b))
	equalTensors(t, "Mul", MulInto(Get(21), a, b), a.Mul(b))
	equalTensors(t, "Scale", ScaleInto(Get(21), a, 1.5), a.Scale(1.5))
	equalTensors(t, "Apply", ApplyInto(Get(21), a, math.Tanh), a.Apply(math.Tanh))
	equalTensors(t, "Pow", PowInto(Get(21), ApplyInto(nil, a, math.Abs), 2), ApplyInto(nil, a, math.Abs).Pow(2))
	equalTensors(t, "MatMul", MatMulInto(Get(12), m, n), m.MatMul(n))
	equalTensors(t, "MatMulNT", MatMulNTInto(nil, m, n.Transpose()), m.MatMul(n))
	equalTensors(t, "MatMulTN", MatMulTNInto(nil, m.Transpose(), n), m.MatMul(n))
	equalTensors(t, "Transpose", TransposeInto(Get(21), a), a.Transpose())
	equalTensors(t, "SumAxes", SumAxesInto(Get(3), a, 1), a.SumAxes(1))

	small := randT(rng, 1, 7)
	equalTensors(t, "BroadcastTo", BroadcastToInto(Get(21), small, 3, 7), small.BroadcastTo(3, 7))
	equalTensors(t, "AddBcast", AddBcastInto(nil, a, small), a.Add(small.BroadcastTo(3, 7)))
	equalTensors(t, "SubBcast", SubBcastInto(nil, a, small), a.Sub(small.BroadcastTo(3, 7)))
	equalTensors(t, "MulBcast", MulBcastInto(nil, a, small), a.Mul(small.BroadcastTo(3, 7)))
	equalTensors(t, "MulSum", MulSumInto(nil, a, b, 0), a.Mul(b).SumAxes(0))
	equalTensors(t, "MulSumLike", MulSumLikeInto(nil, a, b, small), a.Mul(b).SumAxes(0))
}

// TestBcastSpansFallback exercises the generic forEachBcast walk with a
// non-contiguous broadcast pattern ([2,1,3,1] against [2,4,3,5]) that the
// span decomposition cannot express.
func TestBcastSpansFallback(t *testing.T) {
	if _, _, _, ok := bcastSpans([]int{2, 4, 3, 5}, []int{2, 1, 3, 1}); ok {
		t.Fatal("expected non-contiguous broadcast to reject span decomposition")
	}
	rng := rand.New(rand.NewSource(3))
	full := randT(rng, 2, 4, 3, 5)
	small := randT(rng, 2, 1, 3, 1)
	equalTensors(t, "non-contiguous MulBcast",
		MulBcastInto(nil, full, small),
		full.Mul(small.BroadcastTo(2, 4, 3, 5)))
	equalTensors(t, "non-contiguous SumLike",
		SumLikeInto(nil, full, small),
		full.SumAxes(1, 3))
}

// TestParallelMatMulDeterminism is the determinism guard required by the
// compute-backbone design: the row-sharded parallel MatMul must be bitwise
// identical to the sequential kernel, because each output row is produced
// by exactly one goroutine running the same code path. The matrices are
// large enough (64·96·80 scalar ops) to clear the parallelism threshold.
func TestParallelMatMulDeterminism(t *testing.T) {
	if parallelWork > 64*96*80 {
		t.Fatalf("test matrices no longer clear parallelWork=%d", parallelWork)
	}
	rng := rand.New(rand.NewSource(11))
	a := randT(rng, 64, 96)
	b := randT(rng, 96, 80)

	seq := New(64, 80)
	matMulRows(seq, a, b, 0, 64) // whole-range sequential kernel
	equalTensors(t, "parallel vs sequential MatMul", MatMulInto(nil, a, b), seq)

	seqNT := New(64, 64)
	bt := randT(rng, 64, 96)
	matMulNTRows(seqNT, a, bt, 0, 64)
	equalTensors(t, "parallel vs sequential MatMulNT", MatMulNTInto(nil, a, bt), seqNT)

	seqTN := New(96, 96)
	at := randT(rng, 64, 96)
	matMulTNRows(seqTN, at, a, 0, 96)
	equalTensors(t, "parallel vs sequential MatMulTN", MatMulTNInto(nil, at, a), seqTN)
}

// TestParallelIm2colDeterminism pins the sharded im2col/col2im pair to the
// single-worker result by forcing GOMAXPROCS(1) for the reference run.
func TestParallelIm2colDeterminism(t *testing.T) {
	g := ConvGeom{Kernel: 3, Stride: 1, Pad: 1, InH: 16, InW: 16, Channel: 8}
	rng := rand.New(rand.NewSource(13))
	x := randT(rng, 8, 16, 16, 8)

	prev := runtime.GOMAXPROCS(1)
	seqCols := Im2col(x, g)
	seqBack := Col2im(seqCols, 8, g)
	runtime.GOMAXPROCS(prev)

	cols := Im2col(x, g)
	equalTensors(t, "parallel vs sequential Im2col", cols, seqCols)
	equalTensors(t, "parallel vs sequential Col2im", Col2im(cols, 8, g), seqBack)
}

// TestPrepDstRejectsWrongSize verifies destinations of mismatched element
// count are rejected rather than silently reallocated.
func TestPrepDstRejectsWrongSize(t *testing.T) {
	a := Ones(2, 3)
	mustPanic(t, "wrong-size dst", func() { AddInto(New(7), a, a) })
}
