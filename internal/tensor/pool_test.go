package tensor

import "testing"

func TestPoolGetReturnsZeroedShape(t *testing.T) {
	var p Pool
	a := p.Get(2, 3)
	if a.Dims() != 2 || a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("Get shape = %v, want [2 3]", a.Shape())
	}
	for i, v := range a.Data() {
		if v != 0 {
			t.Fatalf("fresh Get element %d = %g, want 0", i, v)
		}
	}

	// Dirty the buffer, recycle it, and borrow the same size class under a
	// different shape: the recycled tensor must come back zeroed and with
	// the newly requested shape.
	for i := range a.Data() {
		a.Data()[i] = float64(i + 1)
	}
	p.Put(a)
	b := p.Get(6)
	if b.Dims() != 1 || b.Dim(0) != 6 {
		t.Fatalf("recycled Get shape = %v, want [6]", b.Shape())
	}
	for i, v := range b.Data() {
		if v != 0 {
			t.Fatalf("recycled Get element %d = %g, want 0", i, v)
		}
	}
}

func TestPoolPutPoisons(t *testing.T) {
	var p Pool
	a := p.Get(4)
	p.Put(a)
	if a.Len() != 0 || a.Dims() != 0 {
		t.Fatalf("Put left tensor usable: shape %v len %d", a.Shape(), a.Len())
	}
	mustPanic(t, "use after Put", func() { a.View(4) })

	// Double-Put of the now-empty handle must be a no-op, not a duplicate
	// recycle of the same storage.
	p.Put(a)
	p.Put(nil)
}

// TestPoolRecycledShapeIndependence guards the inline-shape aliasing hazard:
// the handle recycled by Put must not share the poisoned tensor's inline
// shape array, or a later borrower's shape could be mutated through the
// dead handle.
func TestPoolRecycledShapeIndependence(t *testing.T) {
	var p Pool
	a := p.Get(2, 2)
	data := a.Data()
	p.Put(a)
	b := p.Get(4) // same size class; may reuse a's storage
	if len(b.Data()) != 4 {
		t.Fatalf("recycled tensor has %d elements, want 4", len(b.Data()))
	}
	if &b.Data()[0] == &data[0] {
		// Storage was reused — the poisoned handle must not reach it.
		if a.Len() != 0 {
			t.Fatal("poisoned handle still references recycled storage")
		}
	}
	if got := b.Shape(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("recycled tensor shape = %v, want [4]", got)
	}
}

func TestGetLikeAndPutAll(t *testing.T) {
	ref := Ones(3, 2)
	a := GetLike(ref)
	if !a.SameShape(ref) {
		t.Fatalf("GetLike shape = %v, want %v", a.Shape(), ref.Shape())
	}
	b := Get(5)
	PutAll([]*Tensor{a, b})
	if a.Len() != 0 || b.Len() != 0 {
		t.Fatal("PutAll did not poison all tensors")
	}
}
