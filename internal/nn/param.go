// Package nn builds neural networks on top of the autodiff engine: layers,
// the ConvNet architecture used throughout the QuickDrop paper
// ([W, InstanceNorm, ReLU, AvgPool] × D followed by a linear classifier),
// the softmax cross-entropy loss, and parameter plumbing (flattening,
// cloning, serialization) needed by federated averaging.
package nn

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/tensor"
)

// Param is a named, trainable tensor owned by a model. The tensor is the
// master copy: optimizers mutate it in place, and each forward pass binds
// it into the graph as a fresh autodiff variable.
type Param struct {
	Name string
	Data *tensor.Tensor
}

// Layer is one stage of a feed-forward network. Forward consumes the
// layer's bound parameter variables in the order returned by Params.
type Layer interface {
	// Name identifies the layer for debugging and serialization.
	Name() string
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// Forward applies the layer. ps holds one bound variable per Param,
	// in the same order.
	Forward(x *ad.Value, ps []*ad.Value) *ad.Value
}

// Model is an ordered stack of layers.
type Model struct {
	layers []Layer
	params []*Param
	// InputShape is the per-sample input shape [H, W, C].
	InputShape []int
	// Classes is the size of the output layer.
	Classes int
}

// NewModel assembles a model from layers. inputShape is [H, W, C].
func NewModel(inputShape []int, classes int, layers ...Layer) *Model {
	m := &Model{layers: layers, InputShape: append([]int(nil), inputShape...), Classes: classes}
	for _, l := range layers {
		m.params = append(m.params, l.Params()...)
	}
	return m
}

// Params returns all trainable parameters in layer order.
func (m *Model) Params() []*Param { return m.params }

// Layers returns the model's layer stack. Callers must treat it as
// read-only; it is exposed for structural methods such as FU-MP's
// channel pruning, which needs to locate convolution layers.
func (m *Model) Layers() []Layer { return m.layers }

// ForwardLayers runs only the first n layers on x with frozen parameters
// and returns the intermediate activation tensor — used to probe channel
// activations for model-pruning baselines.
func (m *Model) ForwardLayers(x *tensor.Tensor, n int) *tensor.Tensor {
	if n < 0 || n > len(m.layers) {
		panic(fmt.Sprintf("nn: ForwardLayers n=%d out of range [0,%d]", n, len(m.layers)))
	}
	v := ad.Const(x)
	off := 0
	for i, l := range m.layers {
		np := len(l.Params())
		if i >= n {
			break
		}
		ps := make([]*ad.Value, np)
		for j := 0; j < np; j++ {
			ps[j] = ad.Const(m.params[off+j].Data)
		}
		v = l.Forward(v, ps)
		off += np
	}
	return v.Data
}

// NumParams returns the total number of scalar parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += p.Data.Len()
	}
	return n
}

// ParamNames returns the parameter names in layer order — the labels
// the numerics health monitor binds its per-layer series to.
func (m *Model) ParamNames() []string {
	out := make([]string, len(m.params))
	for i, p := range m.params {
		out[i] = p.Name
	}
	return out
}

// ParamTensors returns the live parameter tensors (shared storage).
func (m *Model) ParamTensors() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(m.params))
	for i, p := range m.params {
		out[i] = p.Data
	}
	return out
}

// CloneParams returns deep copies of the current parameter tensors.
func (m *Model) CloneParams() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(m.params))
	for i, p := range m.params {
		out[i] = p.Data.Clone()
	}
	return out
}

// SetParams overwrites the model's parameters with copies of src.
func (m *Model) SetParams(src []*tensor.Tensor) {
	if len(src) != len(m.params) {
		panic(fmt.Sprintf("nn: SetParams got %d tensors for %d params", len(src), len(m.params)))
	}
	for i, p := range m.params {
		if !p.Data.SameShape(src[i]) {
			panic(fmt.Sprintf("nn: SetParams shape mismatch at %q: %s vs %s", p.Name, p.Data.ShapeString(), src[i].ShapeString()))
		}
		copy(p.Data.Data(), src[i].Data())
	}
}

// Bound is a model with its parameters bound into an autodiff graph for
// one forward/backward episode.
type Bound struct {
	model *Model
	vars  []*ad.Value
}

// Bind wraps the current parameter tensors as differentiable variables.
// Call once per optimization step; the returned Bound shares no graph with
// previous episodes.
func (m *Model) Bind() *Bound {
	vars := make([]*ad.Value, len(m.params))
	for i, p := range m.params {
		vars[i] = ad.Var(p.Data)
	}
	return &Bound{model: m, vars: vars}
}

// BindFrozen wraps parameters as constants (inference only, no gradients).
func (m *Model) BindFrozen() *Bound {
	vars := make([]*ad.Value, len(m.params))
	for i, p := range m.params {
		vars[i] = ad.Const(p.Data)
	}
	return &Bound{model: m, vars: vars}
}

// ParamVars returns the bound parameter variables, aligned with
// Model.Params.
func (b *Bound) ParamVars() []*ad.Value { return b.vars }

// Forward runs the full stack on a batch x of shape [B, H, W, C] (or
// [B, features] for purely dense models) and returns the logits.
func (b *Bound) Forward(x *ad.Value) *ad.Value {
	return b.ForwardUpTo(x, len(b.model.layers))
}

// ForwardUpTo runs only the first n layers, returning the intermediate
// activation as a differentiable value — the embedding hook used by
// distribution-matching distillation.
func (b *Bound) ForwardUpTo(x *ad.Value, n int) *ad.Value {
	if n < 0 || n > len(b.model.layers) {
		panic(fmt.Sprintf("nn: ForwardUpTo n=%d out of range [0,%d]", n, len(b.model.layers)))
	}
	off := 0
	for i, l := range b.model.layers {
		np := len(l.Params())
		if i >= n {
			break
		}
		x = l.Forward(x, b.vars[off:off+np])
		off += np
	}
	return x
}

// NumLayers returns the layer count (for partial forwards).
func (b *Bound) NumLayers() int { return len(b.model.layers) }

// Logits is a convenience for inference on raw tensors: it binds frozen
// parameters and returns the logits tensor.
func (m *Model) Logits(x *tensor.Tensor) *tensor.Tensor {
	return m.BindFrozen().Forward(ad.Const(x)).Data
}

// Predict returns the argmax class per sample.
func (m *Model) Predict(x *tensor.Tensor) []int {
	return m.Logits(x).ArgMaxRows()
}

// WriteTo serializes all parameter tensors in order.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, p := range m.params {
		k, err := p.Data.WriteTo(w)
		n += k
		if err != nil {
			return n, fmt.Errorf("nn: write param %q: %w", p.Name, err)
		}
	}
	return n, nil
}

// LoadFrom restores parameters serialized by WriteTo into the model.
// The model must have been constructed with the same architecture.
func (m *Model) LoadFrom(r io.Reader) error {
	for _, p := range m.params {
		t, err := tensor.ReadFrom(r)
		if err != nil {
			return fmt.Errorf("nn: read param %q: %w", p.Name, err)
		}
		if !t.SameShape(p.Data) {
			return fmt.Errorf("nn: param %q shape %s does not match stored %s", p.Name, p.Data.ShapeString(), t.ShapeString())
		}
		copy(p.Data.Data(), t.Data())
	}
	return nil
}

// heInit fills weights with He-normal initialization for fan-in.
func heInit(rng *rand.Rand, fanIn int, shape ...int) *tensor.Tensor {
	return tensor.Randn(rng, math.Sqrt(2/float64(fanIn)), shape...)
}
