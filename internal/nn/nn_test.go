package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/tensor"
)

func TestOneHot(t *testing.T) {
	oh := OneHot([]int{2, 0}, 3)
	want := tensor.FromSlice([]float64{0, 0, 1, 1, 0, 0}, 2, 3)
	if !oh.SameShape(want) {
		t.Fatalf("shape %v", oh.Shape())
	}
	for i := range want.Data() {
		if oh.Data()[i] != want.Data()[i] {
			t.Fatalf("OneHot = %v", oh.Data())
		}
	}
}

func TestOneHotRejectsBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OneHot([]int{3}, 3)
}

func TestCrossEntropyUniformLogits(t *testing.T) {
	// All-zero logits over C classes ⇒ loss = ln C for any labels.
	logits := ad.Const(tensor.New(4, 5))
	loss := CrossEntropy(logits, OneHot([]int{0, 1, 2, 3}, 5))
	if math.Abs(loss.Item()-math.Log(5)) > 1e-10 {
		t.Fatalf("loss = %g, want ln 5 = %g", loss.Item(), math.Log(5))
	}
}

func TestCrossEntropyPerfectPrediction(t *testing.T) {
	// A huge logit on the true class drives the loss to ~0.
	logits := tensor.New(2, 3)
	logits.Set(50, 0, 1)
	logits.Set(50, 1, 2)
	loss := CrossEntropy(ad.Const(logits), OneHot([]int{1, 2}, 3))
	if loss.Item() > 1e-9 {
		t.Fatalf("loss = %g, want ~0", loss.Item())
	}
}

func TestCrossEntropyShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.Randn(rng, 3, 2, 4)
	oh := OneHot([]int{1, 3}, 4)
	l1 := CrossEntropy(ad.Const(logits), oh).Item()
	l2 := CrossEntropy(ad.Const(logits.Apply(func(v float64) float64 { return v + 100 })), oh).Item()
	if math.Abs(l1-l2) > 1e-8 {
		t.Fatalf("loss not shift invariant: %g vs %g", l1, l2)
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	logits := tensor.Randn(rng, 1, 3, 4)
	oh := OneHot([]int{0, 2, 3}, 4)
	err := ad.CheckGradient(func(xs []*ad.Value) *ad.Value {
		return CrossEntropy(xs[0], oh)
	}, []*tensor.Tensor{logits}, 1e-5, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrossEntropyGradientIsSoftmaxMinusOneHot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	logits := tensor.Randn(rng, 1, 2, 3)
	labels := []int{2, 0}
	v := ad.Var(logits.Clone())
	loss := CrossEntropy(v, OneHot(labels, 3))
	g := ad.MustGrad(loss, []*ad.Value{v})[0].Data
	sm := Softmax(logits)
	b := 2.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			want := sm.At(i, j)
			if j == labels[i] {
				want -= 1
			}
			want /= b
			if math.Abs(g.At(i, j)-want) > 1e-10 {
				t.Fatalf("grad[%d,%d] = %g, want %g", i, j, g.At(i, j), want)
			}
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sm := Softmax(tensor.Randn(rng, 5, 3, 7))
	for i := 0; i < 3; i++ {
		sum := 0.0
		for j := 0; j < 7; j++ {
			sum += sm.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		1, 5, 0,
		9, 0, 0,
		0, 0, 2,
	}, 3, 3)
	if got := Accuracy(logits, []int{1, 0, 0}); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
	if Accuracy(tensor.New(1, 2), nil) != 0 {
		t.Fatal("empty labels must give 0")
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense("d", rng, 2, 2)
	d.weight.Data = tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	d.bias.Data = tensor.FromSlice([]float64{10, 20}, 2)
	m := NewModel([]int{2}, 2, d)
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	got := m.Logits(x)
	want := []float64{1*1 + 1*3 + 10, 1*2 + 1*4 + 20}
	for i, w := range want {
		if got.Data()[i] != w {
			t.Fatalf("logits = %v, want %v", got.Data(), want)
		}
	}
}

func TestConvNetShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := ConvNetConfig{InputH: 8, InputW: 8, InputC: 3, Classes: 10, Width: 8, Depth: 2}
	m := NewConvNet(cfg, rng)
	x := tensor.Randn(rng, 1, 2, 8, 8, 3)
	logits := m.Logits(x)
	if logits.Dim(0) != 2 || logits.Dim(1) != 10 {
		t.Fatalf("logits shape %v", logits.Shape())
	}
}

func TestConvNetConfigValidate(t *testing.T) {
	bad := ConvNetConfig{InputH: 4, InputW: 4, InputC: 1, Classes: 10, Width: 4, Depth: 4}
	if err := bad.Validate(); err == nil {
		t.Fatal("depth 4 on 4x4 input must be invalid")
	}
	good := DefaultConvNetConfig(8, 8, 1, 10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConvNetDeterministicInit(t *testing.T) {
	cfg := DefaultConvNetConfig(8, 8, 1, 4)
	a := NewConvNet(cfg, rand.New(rand.NewSource(9)))
	b := NewConvNet(cfg, rand.New(rand.NewSource(9)))
	pa, pb := a.ParamTensors(), b.ParamTensors()
	for i := range pa {
		for j := range pa[i].Data() {
			if pa[i].Data()[j] != pb[i].Data()[j] {
				t.Fatal("same seed must give same init")
			}
		}
	}
}

func TestModelParamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewConvNet(DefaultConvNetConfig(8, 8, 1, 3), rng)
	orig := m.CloneParams()
	// Perturb, then restore.
	for _, p := range m.ParamTensors() {
		p.ScaleInPlace(3)
	}
	m.SetParams(orig)
	for i, p := range m.ParamTensors() {
		for j := range p.Data() {
			if p.Data()[j] != orig[i].Data()[j] {
				t.Fatal("SetParams must restore exactly")
			}
		}
	}
}

func TestModelSetParamsValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewConvNet(DefaultConvNetConfig(8, 8, 1, 3), rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong count")
		}
	}()
	m.SetParams(nil)
}

func TestModelSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := DefaultConvNetConfig(8, 8, 1, 3)
	m := NewConvNet(cfg, rng)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2 := NewConvNet(cfg, rand.New(rand.NewSource(999)))
	if err := m2.LoadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	p1, p2 := m.ParamTensors(), m2.ParamTensors()
	for i := range p1 {
		for j := range p1[i].Data() {
			if p1[i].Data()[j] != p2[i].Data()[j] {
				t.Fatal("round trip mismatch")
			}
		}
	}
}

func TestConvNetGradientNumeric(t *testing.T) {
	// End-to-end gradient check on a tiny ConvNet: loss vs all parameters.
	rng := rand.New(rand.NewSource(11))
	cfg := ConvNetConfig{InputH: 4, InputW: 4, InputC: 1, Classes: 2, Width: 2, Depth: 1}
	m := NewConvNet(cfg, rng)
	x := tensor.Randn(rng, 1, 2, 4, 4, 1)
	oh := OneHot([]int{0, 1}, 2)

	params := m.CloneParams()
	err := ad.CheckGradient(func(ps []*ad.Value) *ad.Value {
		b := &Bound{model: m, vars: ps}
		return CrossEntropy(b.Forward(ad.Const(x)), oh)
	}, params, 1e-5, 2e-4)
	if err != nil {
		t.Fatal(err)
	}
}

func TestConvNetGradientWrtInputNumeric(t *testing.T) {
	// Gradient w.r.t. the input image — the path dataset distillation uses.
	rng := rand.New(rand.NewSource(12))
	cfg := ConvNetConfig{InputH: 4, InputW: 4, InputC: 1, Classes: 2, Width: 2, Depth: 1}
	m := NewConvNet(cfg, rng)
	x := tensor.Randn(rng, 1, 1, 4, 4, 1)
	oh := OneHot([]int{1}, 2)
	err := ad.CheckGradient(func(xs []*ad.Value) *ad.Value {
		return CrossEntropy(m.BindFrozen().Forward(xs[0]), oh)
	}, []*tensor.Tensor{x}, 1e-5, 2e-4)
	if err != nil {
		t.Fatal(err)
	}
}

func TestInstanceNormNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := NewInstanceNorm("n", 2)
	x := ad.Const(tensor.Randn(rng, 5, 1, 4, 4, 2))
	ps := []*ad.Value{ad.Const(n.gamma.Data), ad.Const(n.beta.Data)}
	y := n.Forward(x, ps).Data
	// Per channel: mean ≈ 0, variance ≈ 1.
	for c := 0; c < 2; c++ {
		sum, sq := 0.0, 0.0
		for h := 0; h < 4; h++ {
			for w := 0; w < 4; w++ {
				v := y.At(0, h, w, c)
				sum += v
				sq += v * v
			}
		}
		mean := sum / 16
		variance := sq/16 - mean*mean
		if math.Abs(mean) > 1e-10 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d: mean %g var %g", c, mean, variance)
		}
	}
}

func TestAvgPoolKnown(t *testing.T) {
	g := tensor.ConvGeom{Kernel: 2, Stride: 2, Pad: 0, InH: 2, InW: 2, Channel: 1}
	p := NewAvgPool(g)
	x := ad.Const(tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2, 1))
	y := p.Forward(x, nil).Data
	if y.Len() != 1 || y.Data()[0] != 2.5 {
		t.Fatalf("avgpool = %v", y.Data())
	}
}

func TestPredictMatchesLogitsArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := NewConvNet(DefaultConvNetConfig(8, 8, 1, 4), rng)
	x := tensor.Randn(rng, 1, 3, 8, 8, 1)
	pred := m.Predict(x)
	am := m.Logits(x).ArgMaxRows()
	for i := range pred {
		if pred[i] != am[i] {
			t.Fatal("Predict must be argmax of Logits")
		}
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cfg := ConvNetConfig{InputH: 8, InputW: 8, InputC: 1, Classes: 2, Width: 4, Depth: 1}
	m := NewConvNet(cfg, rng)
	// conv: 3*3*1*4 + 4; norm: 4+4; dense: (4*4*4)*2 + 2.
	want := 36 + 4 + 8 + 128 + 2
	if got := m.NumParams(); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
}
