package nn

import (
	"fmt"
	"math/rand"

	"quickdrop/internal/tensor"
)

// ConvNetConfig describes the modular ConvNet of the paper (§4.1):
// D duplicate blocks [W-filter 3×3 conv, InstanceNorm, ReLU, AvgPool]
// followed by a linear classifier. The paper's default is 3 blocks of 128
// filters on 32×32 inputs; this reproduction defaults to a scaled-down
// variant suitable for CPU execution (see DESIGN.md, substitutions).
type ConvNetConfig struct {
	InputH  int  // input height
	InputW  int  // input width
	InputC  int  // input channels
	Classes int  // output classes
	Width   int  // filters per block (paper: 128)
	Depth   int  // number of blocks (paper: 3)
	NoNorm  bool // drop InstanceNorm (ablations only)
}

// Validate checks that every pooling stage has spatial extent to consume.
func (c ConvNetConfig) Validate() error {
	if c.InputH < 2 || c.InputW < 2 || c.InputC < 1 || c.Classes < 2 || c.Width < 1 || c.Depth < 1 {
		return fmt.Errorf("nn: invalid ConvNet config %+v", c)
	}
	h, w := c.InputH, c.InputW
	for i := 0; i < c.Depth; i++ {
		if h < 2 || w < 2 {
			return fmt.Errorf("nn: ConvNet depth %d too large for %dx%d input (block %d has %dx%d map)",
				c.Depth, c.InputH, c.InputW, i, h, w)
		}
		h, w = h/2, w/2
	}
	return nil
}

// DefaultConvNetConfig returns the scaled-down architecture used by tests
// and examples: 2 blocks of 16 filters.
func DefaultConvNetConfig(h, w, c, classes int) ConvNetConfig {
	return ConvNetConfig{InputH: h, InputW: w, InputC: c, Classes: classes, Width: 16, Depth: 2}
}

// NewConvNet builds the paper's ConvNet for the config, with deterministic
// initialization from rng.
func NewConvNet(cfg ConvNetConfig, rng *rand.Rand) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	var layers []Layer
	h, w, ch := cfg.InputH, cfg.InputW, cfg.InputC
	for d := 0; d < cfg.Depth; d++ {
		conv := tensor.ConvGeom{Kernel: 3, Stride: 1, Pad: 1, InH: h, InW: w, Channel: ch}
		layers = append(layers, NewConv2D(fmt.Sprintf("block%d.conv", d), rng, conv, cfg.Width))
		ch = cfg.Width
		if !cfg.NoNorm {
			layers = append(layers, NewInstanceNorm(fmt.Sprintf("block%d.norm", d), ch))
		}
		layers = append(layers, ReLULayer{})
		pool := tensor.ConvGeom{Kernel: 2, Stride: 2, Pad: 0, InH: h, InW: w, Channel: ch}
		layers = append(layers, NewAvgPool(pool))
		h, w = pool.OutH(), pool.OutW()
	}
	layers = append(layers, Flatten{})
	layers = append(layers, NewDense("classifier", rng, h*w*ch, cfg.Classes))
	return NewModel([]int{cfg.InputH, cfg.InputW, cfg.InputC}, cfg.Classes, layers...)
}

// NewConvNetLike builds a fresh ConvNet with the same architecture as cfg
// but new random initialization — used by distillation fine-tuning, which
// matches gradients across many random re-initializations.
func NewConvNetLike(cfg ConvNetConfig, rng *rand.Rand) *Model { return NewConvNet(cfg, rng) }
