package nn

import (
	"fmt"
	"math/rand"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/tensor"
)

// Conv2D is a 2-D convolution on NHWC feature maps, implemented as
// im2col followed by a matrix multiply so every derivative — including the
// second-order ones used by gradient matching — reduces to verified linear
// primitives.
type Conv2D struct {
	Geom    tensor.ConvGeom
	Filters int
	weight  *Param // [K*K*C, F]
	bias    *Param // [F]
}

// NewConv2D creates a convolution for the given geometry and filter count.
func NewConv2D(name string, rng *rand.Rand, g tensor.ConvGeom, filters int) *Conv2D {
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	fanIn := g.Kernel * g.Kernel * g.Channel
	return &Conv2D{
		Geom:    g,
		Filters: filters,
		weight:  &Param{Name: name + ".weight", Data: heInit(rng, fanIn, fanIn, filters)},
		bias:    &Param{Name: name + ".bias", Data: tensor.New(filters)},
	}
}

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// Forward implements Layer. x has shape [B, H, W, C]; the output has shape
// [B, OH, OW, F].
func (c *Conv2D) Forward(x *ad.Value, ps []*ad.Value) *ad.Value {
	b := x.Data.Dim(0)
	cols := ad.Im2col(x, c.Geom)                     // [B*OH*OW, K*K*C]
	y := ad.AddRowVec(ad.MatMul(cols, ps[0]), ps[1]) // [B*OH*OW, F]
	return ad.Reshape(y, b, c.Geom.OutH(), c.Geom.OutW(), c.Filters)
}

// InstanceNorm normalizes each channel of each sample over its spatial
// extent, with optional learned scale and shift, as in the paper's ConvNet.
type InstanceNorm struct {
	Channels int
	Eps      float64
	gamma    *Param // [C]
	beta     *Param // [C]
}

// NewInstanceNorm creates an affine instance-normalization layer.
func NewInstanceNorm(name string, channels int) *InstanceNorm {
	return &InstanceNorm{
		Channels: channels,
		Eps:      1e-5,
		gamma:    &Param{Name: name + ".gamma", Data: tensor.Ones(channels)},
		beta:     &Param{Name: name + ".beta", Data: tensor.New(channels)},
	}
}

// Name implements Layer.
func (n *InstanceNorm) Name() string { return "instancenorm" }

// Params implements Layer.
func (n *InstanceNorm) Params() []*Param { return []*Param{n.gamma, n.beta} }

// Forward implements Layer. x has shape [B, H, W, C]. Every per-sample
// statistic stays at its reduced shape [B,1,1,C] and is combined through
// the fused broadcast primitives, so the forward (and its arbitrarily
// nested backward graphs) never materialize a broadcast feature map.
func (n *InstanceNorm) Forward(x *ad.Value, ps []*ad.Value) *ad.Value {
	if x.Data.Dims() != 4 || x.Data.Dim(3) != n.Channels {
		panic(fmt.Sprintf("nn: InstanceNorm expects [B,H,W,%d], got %s", n.Channels, x.Data.ShapeString()))
	}
	area := float64(x.Data.Dim(1) * x.Data.Dim(2))
	mean := ad.Scale(ad.SumAxes(x, 1, 2), 1/area) // [B,1,1,C]
	centered := ad.SubBcast(x, mean)              // [B,H,W,C]
	variance := ad.Scale(ad.MulSum(centered, centered, 1, 2), 1/area)
	inv := ad.PowConst(ad.AddConst(variance, n.Eps), -0.5) // [B,1,1,C]
	xhat := ad.MulBcast(centered, inv)
	scaled := ad.MulBcast(xhat, ad.Reshape(ps[0], 1, 1, 1, n.Channels))
	return ad.AddBcast(scaled, ad.Reshape(ps[1], 1, 1, 1, n.Channels))
}

// ReLULayer applies the rectifier elementwise.
type ReLULayer struct{}

// Name implements Layer.
func (ReLULayer) Name() string { return "relu" }

// Params implements Layer.
func (ReLULayer) Params() []*Param { return nil }

// Forward implements Layer.
func (ReLULayer) Forward(x *ad.Value, _ []*ad.Value) *ad.Value { return ad.ReLU(x) }

// AvgPool downsamples NHWC maps by averaging over Kernel×Kernel windows.
// It is composed from im2col + reduction, so its gradient (and gradient of
// gradient) come for free from the linear primitives.
type AvgPool struct {
	Geom tensor.ConvGeom
}

// NewAvgPool creates a pooling layer for the given input geometry; Kernel
// and Stride come from g.
func NewAvgPool(g tensor.ConvGeom) *AvgPool {
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	return &AvgPool{Geom: g}
}

// Name implements Layer.
func (p *AvgPool) Name() string { return "avgpool" }

// Params implements Layer.
func (p *AvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (p *AvgPool) Forward(x *ad.Value, _ []*ad.Value) *ad.Value {
	b := x.Data.Dim(0)
	g := p.Geom
	k2 := g.Kernel * g.Kernel
	cols := ad.Im2col(x, g) // [B*OH*OW, K*K*C]
	rows := cols.Data.Dim(0)
	grouped := ad.Reshape(cols, rows, k2, g.Channel)       // window-major rows
	avg := ad.Scale(ad.SumAxes(grouped, 1), 1/float64(k2)) // [rows,1,C]
	return ad.Reshape(avg, b, g.OutH(), g.OutW(), g.Channel)
}

// Flatten reshapes [B, H, W, C] (or any rank ≥ 2) to [B, rest].
type Flatten struct{}

// Name implements Layer.
func (Flatten) Name() string { return "flatten" }

// Params implements Layer.
func (Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (Flatten) Forward(x *ad.Value, _ []*ad.Value) *ad.Value {
	rest := 1
	for i := 1; i < x.Data.Dims(); i++ {
		rest *= x.Data.Dim(i)
	}
	return ad.Reshape(x, x.Data.Dim(0), rest)
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	In, Out int
	weight  *Param // [In, Out]
	bias    *Param // [Out]
}

// NewDense creates a dense layer with He initialization.
func NewDense(name string, rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		In:     in,
		Out:    out,
		weight: &Param{Name: name + ".weight", Data: heInit(rng, in, in, out)},
		bias:   &Param{Name: name + ".bias", Data: tensor.New(out)},
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// Forward implements Layer. x has shape [B, In].
func (d *Dense) Forward(x *ad.Value, ps []*ad.Value) *ad.Value {
	return ad.AddRowVec(ad.MatMul(x, ps[0]), ps[1])
}
