package nn

import (
	"fmt"
	"math/rand"
	"sort"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/tensor"
)

// MaxPool downsamples NHWC maps by taking the maximum over Kernel×Kernel
// windows. The argmax mask is treated as a constant (standard subgradient
// convention), so gradients route to the winning positions only.
type MaxPool struct {
	Geom tensor.ConvGeom
}

// NewMaxPool creates a max-pooling layer for the given input geometry.
func NewMaxPool(g tensor.ConvGeom) *MaxPool {
	if err := g.Validate(); err != nil {
		panic(err.Error())
	}
	return &MaxPool{Geom: g}
}

// Name implements Layer.
func (p *MaxPool) Name() string { return "maxpool" }

// Params implements Layer.
func (p *MaxPool) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool) Forward(x *ad.Value, _ []*ad.Value) *ad.Value {
	b := x.Data.Dim(0)
	g := p.Geom
	k2 := g.Kernel * g.Kernel
	cols := ad.Im2col(x, g) // [B*OH*OW, K*K*C]
	rows := cols.Data.Dim(0)
	grouped := ad.Reshape(cols, rows, k2, g.Channel) // window-major

	// One-hot argmax mask per (row, channel), detached.
	mask := tensor.New(rows, k2, g.Channel)
	gd := grouped.Data.Data()
	md := mask.Data()
	for r := 0; r < rows; r++ {
		for c := 0; c < g.Channel; c++ {
			best, bestV := 0, gd[r*k2*g.Channel+c]
			for w := 1; w < k2; w++ {
				if v := gd[(r*k2+w)*g.Channel+c]; v > bestV {
					best, bestV = w, v
				}
			}
			md[(r*k2+best)*g.Channel+c] = 1
		}
	}
	picked := ad.SumAxes(ad.Mul(grouped, ad.Const(mask)), 1) // [rows,1,C]
	return ad.Reshape(picked, b, g.OutH(), g.OutW(), g.Channel)
}

// Activation applies a fixed nonlinearity elementwise.
type Activation struct {
	Kind string // "relu", "sigmoid", "tanh"
}

// Name implements Layer.
func (a Activation) Name() string { return a.Kind }

// Params implements Layer.
func (Activation) Params() []*Param { return nil }

// Forward implements Layer.
func (a Activation) Forward(x *ad.Value, _ []*ad.Value) *ad.Value {
	switch a.Kind {
	case "relu":
		return ad.ReLU(x)
	case "sigmoid":
		return ad.Sigmoid(x)
	case "tanh":
		return ad.Tanh(x)
	default:
		panic(fmt.Sprintf("nn: unknown activation %q", a.Kind))
	}
}

// MLPConfig describes a fully connected classifier (used by ablations and
// as a light-weight alternative backbone).
type MLPConfig struct {
	// In is the flattened input feature count; InputShape documents the
	// pre-flatten sample shape for Model metadata.
	InputShape []int
	Hidden     []int
	Classes    int
	Activation string // default "relu"
}

// NewMLP builds a multilayer perceptron with He initialization.
func NewMLP(cfg MLPConfig, rng *rand.Rand) *Model {
	if len(cfg.InputShape) == 0 || cfg.Classes < 2 {
		panic(fmt.Sprintf("nn: invalid MLP config %+v", cfg))
	}
	act := cfg.Activation
	if act == "" {
		act = "relu"
	}
	in := 1
	for _, d := range cfg.InputShape {
		in *= d
	}
	layers := []Layer{Flatten{}}
	prev := in
	for i, h := range cfg.Hidden {
		layers = append(layers, NewDense(fmt.Sprintf("hidden%d", i), rng, prev, h), Activation{Kind: act})
		prev = h
	}
	layers = append(layers, NewDense("classifier", rng, prev, cfg.Classes))
	return NewModel(cfg.InputShape, cfg.Classes, layers...)
}

// L2Penalty returns λ·Σ‖W‖² over the bound parameter variables, for
// weight-decay regularized training objectives.
func L2Penalty(params []*ad.Value, lambda float64) *ad.Value {
	total := ad.Scalar(0)
	for _, p := range params {
		total = ad.Add(total, ad.SumAll(ad.Mul(p, p)))
	}
	return ad.Scale(total, lambda)
}

// TopKAccuracy returns the fraction of samples whose true label is among
// the k highest logits.
func TopKAccuracy(logits *tensor.Tensor, labels []int, k int) float64 {
	if len(labels) == 0 || k < 1 {
		return 0
	}
	if logits.Dims() != 2 || logits.Dim(0) != len(labels) {
		panic(fmt.Sprintf("nn: TopKAccuracy logits %s vs %d labels", logits.ShapeString(), len(labels)))
	}
	classes := logits.Dim(1)
	if k > classes {
		k = classes
	}
	hits := 0
	idx := make([]int, classes)
	for i, y := range labels {
		row := logits.Data()[i*classes : (i+1)*classes]
		for j := range idx {
			idx[j] = j
		}
		sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		for j := 0; j < k; j++ {
			if idx[j] == y {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(labels))
}
