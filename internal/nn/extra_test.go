package nn

import (
	"math"
	"math/rand"
	"testing"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/tensor"
)

func TestMaxPoolKnown(t *testing.T) {
	g := tensor.ConvGeom{Kernel: 2, Stride: 2, Pad: 0, InH: 2, InW: 2, Channel: 1}
	p := NewMaxPool(g)
	x := ad.Const(tensor.FromSlice([]float64{1, 7, 3, 4}, 1, 2, 2, 1))
	y := p.Forward(x, nil).Data
	if y.Len() != 1 || y.Data()[0] != 7 {
		t.Fatalf("maxpool = %v", y.Data())
	}
}

func TestMaxPoolPerChannel(t *testing.T) {
	// Two channels with different maxima must pool independently.
	g := tensor.ConvGeom{Kernel: 2, Stride: 2, Pad: 0, InH: 2, InW: 2, Channel: 2}
	p := NewMaxPool(g)
	x := ad.Const(tensor.FromSlice([]float64{
		1, 40, 2, 30,
		3, 20, 4, 10,
	}, 1, 2, 2, 2))
	y := p.Forward(x, nil).Data
	if y.Data()[0] != 4 || y.Data()[1] != 40 {
		t.Fatalf("maxpool = %v", y.Data())
	}
}

func TestMaxPoolGradientRoutesToWinner(t *testing.T) {
	g := tensor.ConvGeom{Kernel: 2, Stride: 2, Pad: 0, InH: 2, InW: 2, Channel: 1}
	p := NewMaxPool(g)
	xt := tensor.FromSlice([]float64{1, 7, 3, 4}, 1, 2, 2, 1)
	x := ad.Var(xt)
	y := ad.SumAll(p.Forward(x, nil))
	grad := ad.MustGrad(y, []*ad.Value{x})[0].Data
	want := []float64{0, 1, 0, 0}
	for i, w := range want {
		if grad.Data()[i] != w {
			t.Fatalf("grad = %v, want %v", grad.Data(), want)
		}
	}
}

func TestActivationKinds(t *testing.T) {
	x := ad.Const(tensor.FromSlice([]float64{-1, 0, 2}, 1, 3))
	relu := Activation{Kind: "relu"}.Forward(x, nil).Data
	if relu.Data()[0] != 0 || relu.Data()[2] != 2 {
		t.Fatalf("relu = %v", relu.Data())
	}
	sig := Activation{Kind: "sigmoid"}.Forward(x, nil).Data
	if math.Abs(sig.Data()[1]-0.5) > 1e-12 {
		t.Fatalf("sigmoid = %v", sig.Data())
	}
	tanh := Activation{Kind: "tanh"}.Forward(x, nil).Data
	if math.Abs(tanh.Data()[1]) > 1e-12 {
		t.Fatalf("tanh = %v", tanh.Data())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown activation must panic")
		}
	}()
	Activation{Kind: "gelu"}.Forward(x, nil)
}

func TestMLPLearnsXORishTask(t *testing.T) {
	// A linear model cannot separate XOR; a 1-hidden-layer MLP can.
	rng := rand.New(rand.NewSource(50))
	m := NewMLP(MLPConfig{InputShape: []int{1, 2, 1}, Hidden: []int{8}, Classes: 2}, rng)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []int{0, 1, 1, 0}
	batch := tensor.New(4, 1, 2, 1)
	for i, x := range xs {
		batch.Set(x[0], i, 0, 0, 0)
		batch.Set(x[1], i, 0, 1, 0)
	}
	oh := OneHot(ys, 2)
	for step := 0; step < 800; step++ {
		bound := m.Bind()
		loss := CrossEntropy(bound.Forward(ad.Const(batch)), oh)
		grads := ad.MustGrad(loss, bound.ParamVars())
		for i, p := range m.ParamTensors() {
			p.AxpyInPlace(-0.5, grads[i].Data)
		}
	}
	if acc := Accuracy(m.Logits(batch), ys); acc != 1 {
		t.Fatalf("MLP failed XOR: accuracy %.2f", acc)
	}
}

func TestMLPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP(MLPConfig{Classes: 1}, rand.New(rand.NewSource(1)))
}

func TestL2Penalty(t *testing.T) {
	p := ad.Var(tensor.FromSlice([]float64{3, 4}, 2))
	pen := L2Penalty([]*ad.Value{p}, 0.1)
	if math.Abs(pen.Item()-2.5) > 1e-12 { // 0.1 * 25
		t.Fatalf("penalty = %g", pen.Item())
	}
	g := ad.MustGrad(pen, []*ad.Value{p})[0].Data
	if math.Abs(g.Data()[0]-0.6) > 1e-12 { // 0.1 * 2 * 3
		t.Fatalf("grad = %v", g.Data())
	}
}

func TestTopKAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		5, 4, 0, // true 1 → top-1 miss, top-2 hit
		9, 0, 1, // true 0 → top-1 hit
	}, 2, 3)
	labels := []int{1, 0}
	if got := TopKAccuracy(logits, labels, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("top-1 = %g", got)
	}
	if got := TopKAccuracy(logits, labels, 2); got != 1 {
		t.Fatalf("top-2 = %g", got)
	}
	if got := TopKAccuracy(logits, labels, 99); got != 1 {
		t.Fatalf("top-k clamp = %g", got)
	}
	if TopKAccuracy(logits, nil, 1) != 0 {
		t.Fatal("empty labels must give 0")
	}
}

func TestConvNetWithMaxPoolVariant(t *testing.T) {
	// A hand-assembled conv → relu → maxpool → dense stack must produce
	// valid logits and gradients.
	rng := rand.New(rand.NewSource(51))
	conv := NewConv2D("c", rng, tensor.ConvGeom{Kernel: 3, Stride: 1, Pad: 1, InH: 4, InW: 4, Channel: 1}, 4)
	pool := NewMaxPool(tensor.ConvGeom{Kernel: 2, Stride: 2, Pad: 0, InH: 4, InW: 4, Channel: 4})
	m := NewModel([]int{4, 4, 1}, 3,
		conv, Activation{Kind: "relu"}, pool, Flatten{}, NewDense("d", rng, 2*2*4, 3))
	x := tensor.Randn(rng, 1, 2, 4, 4, 1)
	logits := m.Logits(x)
	if logits.Dim(0) != 2 || logits.Dim(1) != 3 {
		t.Fatalf("logits %v", logits.Shape())
	}
	bound := m.Bind()
	loss := CrossEntropy(bound.Forward(ad.Const(x)), OneHot([]int{0, 2}, 3))
	grads := ad.MustGrad(loss, bound.ParamVars())
	if len(grads) != len(m.Params()) {
		t.Fatal("gradient count mismatch")
	}
}

func TestInstanceNormGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := NewInstanceNorm("n", 2)
	x := tensor.Randn(rng, 1, 1, 3, 3, 2)
	gamma := tensor.Randn(rng, 0.5, 2).Apply(func(v float64) float64 { return v + 1 })
	beta := tensor.Randn(rng, 0.5, 2)
	err := ad.CheckGradient(func(xs []*ad.Value) *ad.Value {
		y := n.Forward(xs[0], []*ad.Value{xs[1], xs[2]})
		return ad.SumAll(ad.Mul(y, y))
	}, []*tensor.Tensor{x, gamma, beta}, 1e-5, 5e-4)
	if err != nil {
		t.Fatal(err)
	}
}

func TestInstanceNormShapeValidation(t *testing.T) {
	n := NewInstanceNorm("n", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on channel mismatch")
		}
	}()
	ps := []*ad.Value{ad.Const(tensor.Ones(4)), ad.Const(tensor.New(4))}
	n.Forward(ad.Const(tensor.New(1, 2, 2, 3)), ps)
}
