package nn

import (
	"fmt"
	"math"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/tensor"
)

// OneHot encodes integer labels as a [B, classes] matrix.
func OneHot(labels []int, classes int) *tensor.Tensor {
	t := tensor.New(len(labels), classes)
	for i, y := range labels {
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, classes))
		}
		t.Set(1, i, y)
	}
	return t
}

// CrossEntropy returns the mean softmax cross-entropy between logits
// [B, C] and a one-hot target matrix of the same shape, as a scalar node.
// The log-sum-exp is stabilized by subtracting the detached row-wise max.
func CrossEntropy(logits *ad.Value, oneHot *tensor.Tensor) *ad.Value {
	if logits.Data.Dims() != 2 || !oneHot.SameShape(logits.Data) {
		panic(fmt.Sprintf("nn: CrossEntropy logits %s vs targets %s", logits.Data.ShapeString(), oneHot.ShapeString()))
	}
	b, c := logits.Data.Dim(0), logits.Data.Dim(1)

	// Row-wise max as a constant: shifting by a constant leaves both the
	// loss value and its gradients unchanged, so detaching is exact.
	maxes := tensor.New(b, 1)
	ld := logits.Data.Data()
	for i := 0; i < b; i++ {
		m := ld[i*c]
		for j := 1; j < c; j++ {
			if v := ld[i*c+j]; v > m {
				m = v
			}
		}
		maxes.Set(m, i, 0)
	}
	shifted := ad.SubBcast(logits, ad.Const(maxes))

	// lse_i = log Σ_j exp(z_ij), shape [B,1].
	lse := ad.Log(ad.SumAxes(ad.Exp(shifted), 1))
	// picked_i = Σ_j z_ij · onehot_ij, shape [B,1], with the product
	// reduced in one fused pass.
	picked := ad.MulSum(shifted, ad.Const(oneHot), 1)
	perSample := ad.Sub(lse, picked)
	return ad.Scale(ad.SumAll(perSample), 1/float64(b))
}

// Softmax returns row-wise softmax probabilities for a logits tensor.
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: Softmax expects a matrix, got %s", logits.ShapeString()))
	}
	b, c := logits.Dim(0), logits.Dim(1)
	out := logits.Clone()
	d := out.Data()
	for i := 0; i < b; i++ {
		row := d[i*c : (i+1)*c]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := expStable(v - m)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return out
}

func expStable(x float64) float64 {
	// exp on already max-shifted values; guard against -inf underflow noise.
	if x < -700 {
		return 0
	}
	return math.Exp(x)
}

// Accuracy returns the fraction of samples whose argmax logit matches the
// integer label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	pred := logits.ArgMaxRows()
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
