package eval

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"quickdrop/internal/data"
	"quickdrop/internal/nn"
	"quickdrop/internal/tensor"
)

// constantModel always predicts the same class by biasing the dense layer.
func constantModel(t *testing.T, class, classes int) *nn.Model {
	t.Helper()
	d := nn.NewDense("d", rand.New(rand.NewSource(1)), 4, classes)
	w := d.Params()[0].Data
	w.ScaleInPlace(0)
	b := d.Params()[1].Data
	b.Data()[class] = 10
	return nn.NewModel([]int{2, 2, 1}, classes, nn.Flatten{}, d)
}

func flatSet(n, classes int) *data.Dataset {
	ds := data.NewDataset(2, 2, 1, classes)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		ds.Append(tensor.Randn(rng, 1, 2, 2, 1), i%classes)
	}
	return ds
}

func TestAccuracyConstantPredictor(t *testing.T) {
	m := constantModel(t, 1, 4)
	ds := flatSet(8, 4) // labels 0..3 repeating → 1/4 are class 1
	if got := Accuracy(m, ds); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("accuracy = %g, want 0.25", got)
	}
	if Accuracy(m, data.NewDataset(2, 2, 1, 4)) != 0 {
		t.Fatal("empty dataset accuracy must be 0")
	}
}

func TestPerClassAccuracy(t *testing.T) {
	m := constantModel(t, 2, 3)
	ds := flatSet(9, 3)
	acc, count := PerClassAccuracy(m, ds)
	if acc[2] != 1 || acc[0] != 0 || acc[1] != 0 {
		t.Fatalf("per-class acc = %v", acc)
	}
	for _, c := range count {
		if c != 3 {
			t.Fatalf("counts = %v", count)
		}
	}
}

func TestClassSplit(t *testing.T) {
	m := constantModel(t, 0, 3)
	ds := flatSet(9, 3)
	f, r := ClassSplit(m, ds, 0)
	if f != 1 {
		t.Fatalf("F-Set accuracy = %g, want 1", f)
	}
	if r != 0 {
		t.Fatalf("R-Set accuracy = %g, want 0", r)
	}
}

func TestSubsetSplit(t *testing.T) {
	m := constantModel(t, 1, 2)
	a, b := flatSet(4, 2), flatSet(6, 2)
	f, r := SubsetSplit(m, a, b)
	if math.Abs(f-0.5) > 1e-12 || math.Abs(r-0.5) > 1e-12 {
		t.Fatalf("split = %g/%g", f, r)
	}
}

func TestCostAddAndSpeedup(t *testing.T) {
	a := Cost{Rounds: 1, WallTime: time.Second, DataSize: 100}
	b := Cost{Rounds: 2, WallTime: 3 * time.Second, DataSize: 900}
	a.Add(b)
	if a.Rounds != 3 || a.WallTime != 4*time.Second || a.DataSize != 1000 {
		t.Fatalf("Add = %+v", a)
	}
	base := Cost{WallTime: 40 * time.Second}
	if s := a.Speedup(base); math.Abs(s-10) > 1e-12 {
		t.Fatalf("speedup = %g", s)
	}
	if (Cost{}).Speedup(base) != 0 {
		t.Fatal("zero-time cost must report 0 speedup")
	}
	if a.String() == "" {
		t.Fatal("String must render")
	}
}

func TestEvalLargeBatchPath(t *testing.T) {
	// More samples than the internal batch size exercises the loop.
	m := constantModel(t, 0, 2)
	ds := flatSet(150, 2)
	if got := Accuracy(m, ds); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("accuracy = %g", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	m := constantModel(t, 1, 3)
	ds := flatSet(9, 3)
	cm := ConfusionMatrix(m, ds)
	// Everything is predicted as class 1.
	for true_ := 0; true_ < 3; true_++ {
		for pred := 0; pred < 3; pred++ {
			want := 0
			if pred == 1 {
				want = 3
			}
			if cm[true_][pred] != want {
				t.Fatalf("cm[%d][%d] = %d, want %d", true_, pred, cm[true_][pred], want)
			}
		}
	}
}
