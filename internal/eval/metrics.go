// Package eval computes the metrics the paper reports: top-1 accuracy,
// per-class accuracy, and F-Set/R-Set accuracy for class- and client-level
// unlearning, plus the cost/speedup bookkeeping behind the efficiency
// tables.
package eval

import (
	"fmt"
	"time"

	"quickdrop/internal/data"
	"quickdrop/internal/nn"
)

// batchSize bounds memory use during evaluation.
const batchSize = 64

// Accuracy returns the model's top-1 accuracy on ds.
func Accuracy(m *nn.Model, ds *data.Dataset) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, labels := ds.Batch(idx)
		pred := m.Predict(x)
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}

// PerClassAccuracy returns accuracy per label; classes absent from ds
// report NaN-free 0 with a count of 0 in the companion slice.
func PerClassAccuracy(m *nn.Model, ds *data.Dataset) (acc []float64, count []int) {
	acc = make([]float64, ds.Classes)
	count = make([]int, ds.Classes)
	correct := make([]int, ds.Classes)
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, labels := ds.Batch(idx)
		pred := m.Predict(x)
		for i, p := range pred {
			count[labels[i]]++
			if p == labels[i] {
				correct[labels[i]]++
			}
		}
	}
	for c := range acc {
		if count[c] > 0 {
			acc[c] = float64(correct[c]) / float64(count[c])
		}
	}
	return acc, count
}

// ClassSplit returns the F-Set (samples of forgetClass) and R-Set
// (everything else) accuracies on a test set, the paper's headline metric
// for class-level unlearning.
func ClassSplit(m *nn.Model, test *data.Dataset, forgetClass int) (fset, rset float64) {
	return Accuracy(m, test.OfClass(forgetClass)), Accuracy(m, test.WithoutClass(forgetClass))
}

// SubsetSplit returns accuracy on an explicit forget dataset and on a
// retain dataset — used for client-level unlearning where the F-Set is the
// target client's local data.
func SubsetSplit(m *nn.Model, fset, rset *data.Dataset) (f, r float64) {
	return Accuracy(m, fset), Accuracy(m, rset)
}

// ConfusionMatrix returns counts[true][predicted] over ds.
func ConfusionMatrix(m *nn.Model, ds *data.Dataset) [][]int {
	cm := make([][]int, ds.Classes)
	for i := range cm {
		cm[i] = make([]int, ds.Classes)
	}
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, labels := ds.Batch(idx)
		pred := m.Predict(x)
		for i, p := range pred {
			cm[labels[i]][p]++
		}
	}
	return cm
}

// Cost aggregates the efficiency measures of one unlearning pipeline run.
type Cost struct {
	Rounds   int
	WallTime time.Duration
	// DataSize is the number of samples involved per round, as reported in
	// the paper's "Data Size" column.
	DataSize int
}

// Add merges another cost into this one (summing rounds and time, and
// accumulating data size).
func (c *Cost) Add(o Cost) {
	c.Rounds += o.Rounds
	c.WallTime += o.WallTime
	c.DataSize += o.DataSize
}

// Speedup returns baseline time divided by this cost's time.
func (c Cost) Speedup(baseline Cost) float64 {
	if c.WallTime <= 0 {
		return 0
	}
	return float64(baseline.WallTime) / float64(c.WallTime)
}

// String renders the cost like the paper's table rows.
func (c Cost) String() string {
	return fmt.Sprintf("rounds=%d time=%s data=%d", c.Rounds, c.WallTime.Round(time.Millisecond), c.DataSize)
}
