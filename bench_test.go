// Package quickdrop's root benchmark suite regenerates every table and
// figure of the paper's evaluation (one benchmark per artifact) at the
// "quick" substrate scale, reporting the paper's headline quantities as
// custom benchmark metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Larger scales are available through cmd/experiments -scale standard.
package quickdrop

import (
	"testing"

	"quickdrop/internal/experiments"
)

func quick() experiments.Scale { return experiments.Quick() }

// BenchmarkTable1Capabilities regenerates the qualitative comparison
// matrix (paper Table 1).
func BenchmarkTable1Capabilities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 6 {
			b.Fatalf("expected 6 rows, got %d", len(rows))
		}
	}
}

// BenchmarkTable2SingleClass regenerates the class-level unlearning
// comparison (paper Table 2): accuracy and cost for all class-capable
// approaches on the CIFAR-10 stand-in, 10 clients, α=0.1.
func BenchmarkTable2SingleClass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(quick())
		if err != nil {
			b.Fatal(err)
		}
		report(b, rows)
	}
}

// BenchmarkTable3LargeNetwork regenerates the many-client SVHN experiment
// (paper Table 3) with 10% participation during training and recovery.
func BenchmarkTable3LargeNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table3(quick())
		if err != nil {
			b.Fatal(err)
		}
		report(b, rows)
	}
}

// BenchmarkTable4ClientLevel regenerates client-level unlearning under
// non-IID and IID partitioning (paper Table 4).
func BenchmarkTable4ClientLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nonIID, iid, err := experiments.Table4(quick())
		if err != nil {
			b.Fatal(err)
		}
		if len(nonIID) == 0 || len(iid) == 0 {
			b.Fatal("missing rows")
		}
		report(b, nonIID)
	}
}

// BenchmarkTable5Relearn regenerates the unlearn+recover and relearn
// comparison on both datasets (paper Table 5).
func BenchmarkTable5Relearn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cifar, mnist, err := experiments.Table5(quick())
		if err != nil {
			b.Fatal(err)
		}
		if len(cifar) == 0 || len(mnist) == 0 {
			b.Fatal("missing rows")
		}
		report(b, cifar)
	}
}

// BenchmarkTable6Overhead regenerates the in-situ distillation overhead
// measurement for all three datasets (paper Table 6).
func BenchmarkTable6Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table6(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[1].Overhead, "cifar-dd-overhead-%")
	}
}

// BenchmarkFigure2ClassWise regenerates the class-wise accuracy trace
// through unlearning and recovery (paper Fig. 2).
func BenchmarkFigure2ClassWise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(quick())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Acc[len(res.Acc)-1]
		b.ReportMetric(100*last[res.Target], "target-final-acc-%")
	}
}

// BenchmarkFigure3MIA regenerates the membership-inference evaluation of
// the unlearned models (paper Fig. 3).
func BenchmarkFigure3MIA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure3(quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "QuickDrop" {
				b.ReportMetric(100*r.FSetRate, "quickdrop-mia-fset-%")
				b.ReportMetric(100*r.RSetRate, "quickdrop-mia-rset-%")
			}
		}
	}
}

// BenchmarkFigure4Sequential regenerates the sequential unlearning of all
// ten classes (paper Fig. 4).
func BenchmarkFigure4Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(quick())
		if err != nil {
			b.Fatal(err)
		}
		// After the full stream every class must be forgotten.
		final := res.Acc[len(res.Acc)-1]
		maxAcc := 0.0
		for _, a := range final {
			if a > maxAcc {
				maxAcc = a
			}
		}
		b.ReportMetric(100*maxAcc, "max-class-acc-after-all-drops-%")
	}
}

// BenchmarkFigure5FineTuning regenerates the fine-tuning sweep (paper
// Fig. 5): R-Set accuracy and gradient budgets vs fine-tune steps.
func BenchmarkFigure5FineTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure5(quick(), nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].RSetAccuracy, "rset-f0-%")
		b.ReportMetric(100*rows[len(rows)-1].RSetAccuracy, "rset-fmax-%")
	}
}

// BenchmarkFigure6Scale regenerates the scale-parameter sweep (paper
// Fig. 6): accuracy and unlearn/recover time vs s.
func BenchmarkFigure6Scale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6(quick(), nil)
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(100*first.RSetAccuracy, "rset-s1-%")
		b.ReportMetric(100*last.RSetAccuracy, "rset-s100-%")
		b.ReportMetric(float64(first.SynSamples), "syn-samples-s1")
		b.ReportMetric(float64(last.SynSamples), "syn-samples-s100")
	}
}

// BenchmarkAblationDistance compares the grouped cosine matching distance
// against plain L2 (DESIGN.md decision 2).
func BenchmarkAblationDistance(b *testing.B) {
	benchAblation(b, experiments.AblationDistance)
}

// BenchmarkAblationInit compares real-sample synthetic initialization
// against Gaussian noise (DESIGN.md decision 4).
func BenchmarkAblationInit(b *testing.B) {
	benchAblation(b, experiments.AblationInit)
}

// BenchmarkAblationAugment compares recovery with and without original-
// sample augmentation (DESIGN.md decision 5).
func BenchmarkAblationAugment(b *testing.B) {
	benchAblation(b, experiments.AblationAugment)
}

// BenchmarkAblationObjective compares gradient matching against
// first-order distribution matching (related-work alternative).
func BenchmarkAblationObjective(b *testing.B) {
	benchAblation(b, experiments.AblationObjective)
}

// BenchmarkExtensionSampleLevel runs the sample-level unlearning
// extension (paper §5.1) with its MIA audit.
func BenchmarkExtensionSampleLevel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExtensionSampleLevel(quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "QuickDrop" {
				b.ReportMetric(100*r.ForgottenMIA, "quickdrop-mia-forgot-%")
				b.ReportMetric(100*r.TestAcc, "quickdrop-test-acc-%")
			}
		}
	}
}

func benchAblation(b *testing.B, run func(experiments.Scale) ([]experiments.AblationRow, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := run(quick())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].RSetAccuracy, "rset-default-%")
		b.ReportMetric(100*rows[1].RSetAccuracy, "rset-variant-%")
	}
}

// report surfaces the headline Table-2-style quantities as metrics.
func report(b *testing.B, rows []experiments.MethodRow) {
	b.Helper()
	for _, r := range rows {
		if r.Method == "QuickDrop" {
			b.ReportMetric(r.Speedup, "quickdrop-speedup-x")
			b.ReportMetric(100*r.FinalF, "quickdrop-fset-%")
			b.ReportMetric(100*r.FinalR, "quickdrop-rset-%")
		}
	}
}
