GO ?= go

.PHONY: build test check lint bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Hygiene gate: gofmt, vet, quickdroplint, and race-enabled tests on
# everything except the slow end-to-end core package (see check.sh).
check:
	sh scripts/check.sh

# Static-analysis suite enforcing the compute-backbone invariants
# (pool balance, *Into aliasing, hot-path allocations, determinism,
# graph freezing, error handling). See DESIGN.md "Static analysis".
lint:
	$(GO) run ./cmd/quickdroplint ./...

# Headline benchmarks (gradient-matching step, FedAvg round,
# unlearn+recover), written to BENCH_<stamp>.json. BENCHTIME=10x for
# more iterations; the full tensor-kernel suite stays available via
# `go test -bench . ./internal/tensor/`.
bench:
	sh scripts/bench.sh

fmt:
	gofmt -w .
