GO ?= go

.PHONY: build test check lint bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Hygiene gate: gofmt, vet, quickdroplint, and race-enabled tests on
# everything except the slow end-to-end core package (see check.sh).
check:
	sh scripts/check.sh

# Static-analysis suite enforcing the compute-backbone invariants
# (pool balance, *Into aliasing, hot-path allocations, determinism,
# graph freezing, error handling). See DESIGN.md "Static analysis".
lint:
	$(GO) run ./cmd/quickdroplint ./...

# Allocation-focused benchmarks for the compute backbone.
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/tensor/

fmt:
	gofmt -w .
