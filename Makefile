GO ?= go

.PHONY: build test check bench fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Hygiene gate: gofmt, vet, and race-enabled tests on the concurrent
# packages (tensor kernels, fl training loops).
check:
	sh scripts/check.sh

# Allocation-focused benchmarks for the compute backbone.
bench:
	$(GO) test -run xxx -bench . -benchmem ./internal/tensor/

fmt:
	gofmt -w .
