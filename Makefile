GO ?= go

.PHONY: build test check lint bench bench-check fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Hygiene gate: gofmt, vet, quickdroplint, and race-enabled tests on
# everything except the slow end-to-end core package (see check.sh).
check:
	sh scripts/check.sh

# Static-analysis suite enforcing the compute-backbone invariants
# (pool balance, *Into aliasing, hot-path allocations, determinism,
# graph freezing, error handling) and the concurrency discipline
# (lock balance and ordering, goroutine leaks, atomic/plain mixing,
# WaitGroup balance). See DESIGN.md "Static analysis" and
# "Concurrency analysis". CI also gates the self-run's latency via
# scripts/lint_time_smoke.sh (10 s budget).
lint:
	$(GO) run ./cmd/quickdroplint ./...

# Headline benchmarks (gradient-matching step, FedAvg round, sampled
# million-client round, unlearn+recover), written to BENCH_<stamp>.json.
# BENCHTIME=10x for
# more iterations; the full tensor-kernel suite stays available via
# `go test -bench . ./internal/tensor/`.
bench:
	sh scripts/bench.sh

# Regression gate: runs the headline benchmarks, then diffs the fresh
# BENCH_*.json against the committed baseline and fails when any gated
# metric regresses past its per-benchmark threshold (bench_compare.sh).
bench-check:
	sh scripts/bench.sh
	sh scripts/bench_compare.sh

fmt:
	gofmt -w .
