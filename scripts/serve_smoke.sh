#!/usr/bin/env sh
# serve_smoke.sh — end-to-end check of the quickdropd unlearning
# daemon: boots it on a tiny cohort, posts N concurrent forget
# requests, and asserts the serving contract — the requests coalesce
# into ONE batched SGA+recovery pass, a single new model version is
# published, /v1/predict serves from the snapshot store, the daemon
# metrics and dashboard are exposed, and a graceful SIGTERM drain
# writes the run-ledger manifest with one audit entry per request
# carrying before/after forget-set accuracy. Run standalone or via the
# CI serve-smoke job. RUNS_DIR overrides where the ledger manifest
# lands (CI points it at the workspace to upload it as an artifact).
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d)
RUNS_DIR=${RUNS_DIR:-"$work/runs"}
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "==> build quickdropd"
go build -o "$work/quickdropd" ./cmd/quickdropd

echo "==> boot quickdropd on a tiny cohort"
# A generous linger guarantees the three posts below land in one batch
# even on a slow runner.
"$work/quickdropd" -dataset mnistlike -clients 4 -alpha 0 -rounds 3 -s 10 \
	-addr 127.0.0.1:0 -linger 3s -ledger "$RUNS_DIR" >"$work/log" 2>&1 &
pid=$!

tries=0
until grep -q 'quickdropd: serving on' "$work/log"; do
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "quickdropd exited early:" >&2
		cat "$work/log" >&2
		exit 1
	fi
	tries=$((tries + 1))
	if [ "$tries" -gt 120 ]; then
		echo "timed out waiting for quickdropd to start serving" >&2
		cat "$work/log" >&2
		exit 1
	fi
	sleep 1
done
addr=$(grep -om1 '127\.0\.0\.1:[0-9]*' "$work/log")

echo "==> post 3 concurrent forget requests to http://$addr/v1/forget"
curl -fsS -X POST "http://$addr/v1/forget" -d '{"kind":"class","class":1}' >"$work/r1.json" &
c1=$!
curl -fsS -X POST "http://$addr/v1/forget" -d '{"kind":"class","class":2}' >"$work/r2.json" &
c2=$!
curl -fsS -X POST "http://$addr/v1/forget" -d '{"kind":"client","client":0}' >"$work/r3.json" &
c3=$!
wait "$c1" "$c2" "$c3"
for f in r1 r2 r3; do
	if ! grep -q '"state":"queued"' "$work/$f.json"; then
		echo "submission $f not accepted:" >&2
		cat "$work/$f.json" >&2
		exit 1
	fi
done

echo "==> wait for the batch to publish"
tries=0
until curl -fsS "http://$addr/v1/status" | grep -q '"requests_published_total":3'; do
	tries=$((tries + 1))
	if [ "$tries" -gt 120 ]; then
		echo "timed out waiting for the requests to publish" >&2
		curl -fsS "http://$addr/v1/requests" >&2 || true
		cat "$work/log" >&2
		exit 1
	fi
	sleep 1
done

status=0

echo "==> assert coalescing: one batch, three requests, one new version"
curl -fsS "http://$addr/v1/status" >"$work/status.json"
for want in '"batches_total":1' '"requests_published_total":3' \
	'"requests_failed_total":0' '"model_version":2'; do
	if ! grep -qF "$want" "$work/status.json"; then
		echo "status missing $want:" >&2
		cat "$work/status.json" >&2
		status=1
	fi
done
curl -fsS "http://$addr/v1/requests" >"$work/requests.json"
python3 - "$work/requests.json" <<'EOF' || status=1
import json, sys
reqs = json.load(open(sys.argv[1]))["requests"]
assert len(reqs) == 3, f"{len(reqs)} requests listed, want 3"
for r in reqs:
    assert r["state"] == "published", f"request {r['id']} is {r['state']}: {r.get('error')}"
    assert r["batch"] == 1, f"request {r['id']} ran in batch {r['batch']}, want 1 (coalesced)"
    assert r["version"] == 2, f"request {r['id']} published version {r['version']}, want 2"
print("coalescing: 3 requests in 1 batch -> version 2")
EOF

echo "==> predict from the published snapshot"
python3 -c 'import json; print(json.dumps({"inputs": [[0.0] * 64]}))' |
	curl -fsS -X POST "http://$addr/v1/predict" -d @- >"$work/predict.json"
for want in '"version":2' '"predictions":[' ; do
	if ! grep -qF "$want" "$work/predict.json"; then
		echo "predict missing $want:" >&2
		cat "$work/predict.json" >&2
		status=1
	fi
done

echo "==> scrape the daemon metrics and dashboard"
curl -fsS "http://$addr/metrics" >"$work/metrics"
for series in quickdropd_batches_total quickdropd_requests_published_total \
	quickdropd_model_version quickdropd_batch_requests_count \
	quickdropd_publish_seconds_count quickdrop_unlearn_requests_total; do
	if ! grep -qF "$series" "$work/metrics"; then
		echo "missing metric: $series" >&2
		status=1
	fi
done
if ! grep -q '^quickdropd_batches_total 1$' "$work/metrics"; then
	echo "quickdropd_batches_total != 1 (coalescing broken):" >&2
	grep '^quickdropd_batches_total' "$work/metrics" >&2 || true
	status=1
fi
curl -fsS "http://$addr/dashboard" >"$work/dashboard"
for want in '<!DOCTYPE html>' 'model_version' 'batch_requests'; do
	if ! grep -qF "$want" "$work/dashboard"; then
		echo "dashboard missing: $want" >&2
		status=1
	fi
done

echo "==> SIGTERM: graceful drain writes the ledger audit trail"
kill -TERM "$pid"
tries=0
while kill -0 "$pid" 2>/dev/null; do
	tries=$((tries + 1))
	if [ "$tries" -gt 30 ]; then
		echo "quickdropd did not drain within 30s" >&2
		cat "$work/log" >&2
		exit 1
	fi
	sleep 1
done
pid=""

manifest=$(sed -n 's/^quickdropd: ledger manifest written to \(.*\)$/\1/p' "$work/log" | head -n 1)
if [ -z "$manifest" ] || [ ! -f "$manifest" ]; then
	echo "quickdropd did not write a ledger manifest (RUNS_DIR=$RUNS_DIR)" >&2
	cat "$work/log" >&2
	status=1
else
	python3 - "$manifest" <<'EOF' || status=1
import json, sys
m = json.load(open(sys.argv[1]))
audit = m.get("audit", [])
assert len(audit) == 3, f"{len(audit)} audit entries, want 3 (one per request)"
kinds = sorted(e["kind"] for e in audit)
assert kinds == ["class", "class", "client"], f"audit kinds {kinds}"
for e in audit:
    assert e["status"] == "published", f"audit entry {e['id']} status {e['status']}"
    assert e["batch"] == 1 and e["version"] == 2, f"audit entry {e['id']}: {e}"
    for field in ("fset_before", "fset_after", "rset_before", "rset_after"):
        assert field in e, f"audit entry {e['id']} missing {field}"
print("ledger: 3 audit entries with before/after forget-set accuracy")
EOF
fi

[ "$status" -eq 0 ] && echo "serve_smoke.sh: coalescing, snapshots, and the audit trail are healthy"
exit "$status"
