#!/usr/bin/env sh
# health_smoke.sh — end-to-end check of the numerics health watchdog:
# boots quickdropd with the health monitor on and a NaN fault injected
# into the SGA phase, posts forget requests, and asserts the guarded-
# publish contract — the watchdog trips, every ticket fails with the
# verdict pinned on it, NO new model version is published, the trip
# lands in the JSONL event log and the Prometheus surface, and the
# drained ledger manifest records the health summary plus per-request
# watchdog verdicts in the audit trail. Run standalone or via the CI
# health-smoke job. RUNS_DIR overrides where the ledger manifest lands
# (CI points it at the workspace to upload it as an artifact).
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d)
RUNS_DIR=${RUNS_DIR:-"$work/runs"}
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "==> build quickdropd"
go build -o "$work/quickdropd" ./cmd/quickdropd

echo "==> boot quickdropd with -health and a NaN injected before the SGA phase"
"$work/quickdropd" -dataset mnistlike -clients 4 -alpha 0 -rounds 3 -s 10 \
	-health -inject-nan unlearn \
	-addr 127.0.0.1:0 -linger 3s -ledger "$RUNS_DIR" >"$work/log" 2>&1 &
pid=$!

tries=0
until grep -q 'quickdropd: serving on' "$work/log"; do
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "quickdropd exited early:" >&2
		cat "$work/log" >&2
		exit 1
	fi
	tries=$((tries + 1))
	if [ "$tries" -gt 120 ]; then
		echo "timed out waiting for quickdropd to start serving" >&2
		cat "$work/log" >&2
		exit 1
	fi
	sleep 1
done
addr=$(grep -om1 '127\.0\.0\.1:[0-9]*' "$work/log")

echo "==> post 2 forget requests to http://$addr/v1/forget"
curl -fsS -X POST "http://$addr/v1/forget" -d '{"kind":"class","class":1}' >"$work/r1.json" &
c1=$!
curl -fsS -X POST "http://$addr/v1/forget" -d '{"kind":"class","class":2}' >"$work/r2.json" &
c2=$!
wait "$c1" "$c2"

echo "==> wait for the watchdog to fail the batch"
tries=0
until curl -fsS "http://$addr/v1/status" | grep -q '"requests_failed_total":2'; do
	tries=$((tries + 1))
	if [ "$tries" -gt 120 ]; then
		echo "timed out waiting for the watchdog to fail the requests" >&2
		curl -fsS "http://$addr/v1/requests" >&2 || true
		cat "$work/log" >&2
		exit 1
	fi
	sleep 1
done

status=0

echo "==> assert the guarded publish: nothing published, version stays 1"
curl -fsS "http://$addr/v1/status" >"$work/status.json"
for want in '"requests_published_total":0' '"requests_failed_total":2' \
	'"model_version":1'; do
	if ! grep -qF "$want" "$work/status.json"; then
		echo "status missing $want:" >&2
		cat "$work/status.json" >&2
		status=1
	fi
done

echo "==> assert every ticket carries the watchdog verdict"
curl -fsS "http://$addr/v1/requests" >"$work/requests.json"
python3 - "$work/requests.json" <<'EOF' || status=1
import json, sys
reqs = json.load(open(sys.argv[1]))["requests"]
assert len(reqs) == 2, f"{len(reqs)} requests listed, want 2"
for r in reqs:
    assert r["state"] == "failed", f"request {r['id']} is {r['state']}, want failed"
    assert "nan" in r.get("watchdog", ""), f"request {r['id']} watchdog {r.get('watchdog')!r}, want a NaN verdict"
    assert r.get("version", 0) == 0, f"failed request {r['id']} claims version {r['version']}"
print("tickets: 2 failed, both carrying the watchdog verdict")
EOF

echo "==> assert the trip reached the JSONL event log"
if ! grep -q '"event":"health_trip"' "$work/log"; then
	echo "no health_trip event in the daemon log:" >&2
	cat "$work/log" >&2
	status=1
fi

echo "==> scrape the health metrics"
curl -fsS "http://$addr/metrics" >"$work/metrics"
for series in quickdrop_health quickdrop_health_nan_events_total \
	quickdrop_health_watchdog_trips_total quickdropd_watchdog_trips_total; do
	if ! grep -qF "$series" "$work/metrics"; then
		echo "missing metric: $series" >&2
		status=1
	fi
done
if ! grep -q '^quickdropd_watchdog_trips_total 1$' "$work/metrics"; then
	echo "quickdropd_watchdog_trips_total != 1:" >&2
	grep '^quickdropd_watchdog_trips_total' "$work/metrics" >&2 || true
	status=1
fi
curl -fsS "http://$addr/dashboard" >"$work/dashboard"
if ! grep -qF 'numerics health' "$work/dashboard"; then
	echo "dashboard has no numerics health stat" >&2
	status=1
fi

echo "==> SIGTERM: the drained manifest records the health summary"
kill -TERM "$pid"
tries=0
while kill -0 "$pid" 2>/dev/null; do
	tries=$((tries + 1))
	if [ "$tries" -gt 30 ]; then
		echo "quickdropd did not drain within 30s" >&2
		cat "$work/log" >&2
		exit 1
	fi
	sleep 1
done
pid=""

manifest=$(sed -n 's/^quickdropd: ledger manifest written to \(.*\)$/\1/p' "$work/log" | head -n 1)
if [ -z "$manifest" ] || [ ! -f "$manifest" ]; then
	echo "quickdropd did not write a ledger manifest (RUNS_DIR=$RUNS_DIR)" >&2
	cat "$work/log" >&2
	status=1
else
	python3 - "$manifest" <<'EOF' || status=1
import json, sys
m = json.load(open(sys.argv[1]))
h = m.get("health")
assert h is not None, "manifest has no health summary"
assert h["tripped"], f"health summary not marked tripped: {h}"
assert h["trips"] >= 1, f"health summary trips {h['trips']}, want >= 1"
assert "nan" in h["verdict"], f"health verdict {h['verdict']!r}, want a NaN reason"
assert h["phase"] == "unlearn", f"health phase {h['phase']!r}, want unlearn"
audit = m.get("audit", [])
assert len(audit) == 2, f"{len(audit)} audit entries, want 2"
for e in audit:
    assert e["status"] == "failed", f"audit entry {e['id']} status {e['status']}"
    assert "nan" in e.get("watchdog", ""), f"audit entry {e['id']} has no watchdog verdict: {e}"
print(f"ledger: health summary tripped ({h['verdict']}), 2 audited watchdog failures")
EOF
fi

[ "$status" -eq 0 ] && echo "health_smoke.sh: the watchdog tripped, the publish was refused, and the ledger recorded it"
exit "$status"
