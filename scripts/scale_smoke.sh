#!/usr/bin/env sh
# scale_smoke.sh — registry-scale memory smoke: runs fedsim over a
# MILLION-client lazy cohort, sampling K=64 participants per round, and
# asserts the run both completes and stays inside a hard heap ceiling.
# This is the executable form of the client-registry design claim:
# resident memory is O(model + K·shard), independent of N.
#
# Two layers of enforcement:
#   1. GOMEMLIMIT is set as a soft ceiling so the GC works against the
#      budget exactly as a memory-constrained deployment would.
#   2. The post-run `memstats:` line printed by `fedsim -memstats`
#      (emitted after a forced GC) is parsed and heap_alloc_bytes is
#      compared against HEAP_CEILING_BYTES; anything O(N) at a million
#      clients costs hundreds of MB and fails loudly.
#
#   CLIENTS=1000000 SAMPLE_K=64 ROUNDS=2 sh scripts/scale_smoke.sh
#
# Run via CI (scale-smoke job) or locally before touching the
# registry/sampling/aggregation path.
set -eu

cd "$(dirname "$0")/.."

CLIENTS=${CLIENTS:-1000000}
SAMPLE_K=${SAMPLE_K:-64}
ROUNDS=${ROUNDS:-2}
STEPS=${STEPS:-1}
PER_CLIENT=${PER_CLIENT:-64}
# Soft GC target for the run. The live set is a few MB (model + K
# shards + telemetry); 256MiB leaves headroom for the Go runtime and
# transient rendering garbage while still being far below any O(N)
# footprint (1M shards at 64 samples each would be tens of GB).
GOMEMLIMIT=${GOMEMLIMIT:-256MiB}
# Hard assertion on the post-GC live heap.
HEAP_CEILING_BYTES=${HEAP_CEILING_BYTES:-134217728} # 128 MiB

export GOMEMLIMIT

out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "==> fedsim: $CLIENTS lazy clients, sample-k $SAMPLE_K, $ROUNDS rounds (GOMEMLIMIT=$GOMEMLIMIT)"
go run ./cmd/fedsim \
	-lazy -clients "$CLIENTS" -per-client "$PER_CLIENT" \
	-sample-k "$SAMPLE_K" -rounds "$ROUNDS" -steps "$STEPS" \
	-scale quick -seed 7 -eval-every "$ROUNDS" -memstats | tee "$out"

heap=$(sed -n 's/^memstats: heap_alloc_bytes=\([0-9][0-9]*\).*/\1/p' "$out")
if [ -z "$heap" ]; then
	echo "scale_smoke.sh: FAIL — no memstats line in fedsim output" >&2
	exit 1
fi

echo "scale_smoke.sh: post-GC heap ${heap} bytes (ceiling ${HEAP_CEILING_BYTES})"
if [ "$heap" -gt "$HEAP_CEILING_BYTES" ]; then
	echo "scale_smoke.sh: FAIL — live heap exceeds the O(model + K·shard) ceiling; something scales with N" >&2
	exit 1
fi

echo "scale_smoke.sh: OK — million-client sampled round holds the memory contract"
