#!/usr/bin/env sh
# check.sh — repository hygiene gate: formatting, vet, the quickdroplint
# static-analysis suite, and race-enabled tests. Run via `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> quickdroplint ./..."
go run ./cmd/quickdroplint ./...

# Race gate. Measured on the CI container (2026-08): the non-core tree
# finishes in ~80 s under -race, while internal/core's end-to-end
# train/unlearn/relearn cycles exceed a 10-minute timeout (they multiply
# full FL training by the race detector's ~10x slowdown; ~78 s without
# race). The exclusion is therefore exactly those e2e cycles, not the
# package: core's fast unit tests run under -race in -short mode (the
# e2e fixtures skip via skipE2EInShort), and the e2e cycles still run
# race-free in `make test`.
echo "==> go test -race (all packages except internal/core)"
go test -race $(go list ./... | grep -v 'internal/core$')

echo "==> go test -race -short ./internal/core (e2e train cycles skipped)"
go test -race -short ./internal/core

echo "check.sh: all clean"
