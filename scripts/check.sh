#!/usr/bin/env sh
# check.sh — repository hygiene gate: formatting, vet, and race-enabled
# tests on the packages with concurrent kernels (tensor) and concurrent
# training loops (fl). Run via `make check`.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go test -race ./internal/fl/... ./internal/tensor/..."
go test -race ./internal/fl/... ./internal/tensor/...

echo "check.sh: all clean"
