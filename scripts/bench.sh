#!/usr/bin/env sh
# bench.sh — runs the headline benchmarks (gradient-matching step with
# and without the numerics health monitor, the streaming stats kernels,
# FedAvg round, sampled million-client round, unlearn+recover pass)
# and writes the results to
# BENCH_<UTC stamp>.json for cross-commit comparison. Run via
# `make bench`.
#
#   BENCHTIME=10x sh scripts/bench.sh    # more iterations per benchmark
#
# The committed BENCH_*.json files are the performance baselines; rerun
# on comparable hardware before reading deltas into a change.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-3x}
# The gradient-matching pair feeds the 1% health-overhead gate in
# bench_compare.sh; a handful of iterations cannot resolve 1%, so the
# pair always runs long enough to average scheduler noise out (~1 s).
HEALTH_BENCHTIME=${HEALTH_BENCHTIME:-100x}
stamp=$(date -u +%Y%m%dT%H%M%SZ)
out="BENCH_${stamp}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench (benchtime $BENCHTIME; overhead pair at $HEALTH_BENCHTIME)"
go test -run '^$' -benchmem -benchtime "$HEALTH_BENCHTIME" \
	-bench 'Benchmark(GradientMatchingStep|GradientMatchingStepHealth)$' ./internal/tensor/ | tee "$raw"
go test -run '^$' -benchmem -benchtime "$BENCHTIME" \
	-bench 'Benchmark(NormStats|StatsInto)$' ./internal/tensor/ | tee -a "$raw"
go test -run '^$' -benchmem -benchtime "$BENCHTIME" \
	-bench 'Benchmark(FedAvgRound|SampledRound)$' ./internal/fl/ | tee -a "$raw"
go test -run '^$' -benchmem -benchtime "$BENCHTIME" \
	-bench 'BenchmarkUnlearnRecover$' ./internal/core/ | tee -a "$raw"

{
	printf '{\n'
	printf '  "stamp": "%s",\n' "$stamp"
	printf '  "go": "%s",\n' "$(go env GOVERSION)"
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "benchmarks": [\n'
	awk '
		/^Benchmark/ {
			name = $1
			sub(/^Benchmark/, "", name)
			sub(/-[0-9]+$/, "", name)
			if (found++) printf ",\n"
			printf "    {\"name\":\"%s\",\"iterations\":%s,\"ns_per_op\":%s,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", \
				name, $2, $3, $5, $7
		}
		END { if (found) printf "\n" }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "bench.sh: wrote $out"
