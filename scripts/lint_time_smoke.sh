#!/usr/bin/env sh
# lint_time_smoke.sh — lint latency gate: the full eighteen-rule
# quickdroplint self-run over the module must finish inside a 10-second
# budget (measured 4 s in this tree, so the budget has ~2x headroom).
# The whole-program rules (lockorder, atomicmix, snapfreeze) re-analyze
# every package and the interprocedural summary fixpoints (resbalance,
# statemachine, snapfreeze mutation summaries) are the first
# thing to go superlinear if someone feeds them an unbounded worklist —
# this smoke catches that as a CI failure instead of a slow developer
# loop. Writes a small report (timing + findings) to
# LINT_REPORT (default lint_self_run.txt) for upload as a CI artifact.
set -eu

cd "$(dirname "$0")/.."

BUDGET_SECS=${BUDGET_SECS:-10}
REPORT=${LINT_REPORT:-lint_self_run.txt}

# Build first so the measurement is the analysis, not the compiler.
go build -o /tmp/quickdroplint ./cmd/quickdroplint

start=$(date +%s)
findings=$(/tmp/quickdroplint ./... 2>&1) && status=0 || status=$?
end=$(date +%s)
elapsed=$((end - start))

{
	echo "quickdroplint self-run ($(git rev-parse --short HEAD 2>/dev/null || echo 'no-git'))"
	echo "rules: $(/tmp/quickdroplint -list | wc -l | tr -d ' ')"
	echo "elapsed_seconds: ${elapsed}"
	echo "budget_seconds: ${BUDGET_SECS}"
	echo "exit_status: ${status}"
	echo "findings:"
	if [ -n "$findings" ]; then
		echo "$findings"
	else
		echo "  (none — self-run clean)"
	fi
} >"$REPORT"

cat "$REPORT"

if [ "$status" -ne 0 ]; then
	echo "lint_time_smoke: self-run reported findings (exit $status)" >&2
	exit "$status"
fi
if [ "$elapsed" -gt "$BUDGET_SECS" ]; then
	echo "lint_time_smoke: self-run took ${elapsed}s, budget ${BUDGET_SECS}s" >&2
	exit 1
fi
echo "lint_time_smoke: clean in ${elapsed}s (budget ${BUDGET_SECS}s)"
