#!/usr/bin/env sh
# bench_compare.sh — regression gate over the benchmark artifacts: diffs
# the newest BENCH_<stamp>.json on disk against the committed baseline
# (the newest BENCH_*.json tracked by git) and fails when the headline
# gradient-matching-step metric regresses by more than the threshold.
# Run via `make bench-check`, which produces the fresh artifact first.
#
#   METRIC=FedAvgRound THRESHOLD_PCT=10 sh scripts/bench_compare.sh
#
# Numbers from shared CI runners are noisy; the default 25% threshold is
# deliberately loose so only step-function regressions (an accidental
# O(n^2), a lost parallel path, a pool bypass) trip it.
set -eu

cd "$(dirname "$0")/.."

METRIC=${METRIC:-GradientMatchingStep}
THRESHOLD_PCT=${THRESHOLD_PCT:-25}

baseline=$(git ls-files 'BENCH_*.json' | sort | tail -n 1)
if [ -z "$baseline" ]; then
	echo "bench_compare.sh: no committed BENCH_*.json baseline" >&2
	exit 1
fi

candidate=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)
if [ -z "$candidate" ] || [ "$candidate" = "$baseline" ]; then
	echo "bench_compare.sh: no BENCH_*.json newer than baseline $baseline; run 'make bench' first" >&2
	exit 1
fi

# The artifacts are machine-written by bench.sh with one benchmark
# object per line, so a sed scrape is exact.
extract() {
	sed -n 's/.*"name":"'"$2"'".*"ns_per_op":\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}

base_ns=$(extract "$baseline" "$METRIC")
new_ns=$(extract "$candidate" "$METRIC")
if [ -z "$base_ns" ]; then
	echo "bench_compare.sh: metric $METRIC missing from baseline $baseline" >&2
	exit 1
fi
if [ -z "$new_ns" ]; then
	echo "bench_compare.sh: metric $METRIC missing from $candidate" >&2
	exit 1
fi

# Integer-only check: new > base * (100 + threshold) / 100.
limit=$((base_ns * (100 + THRESHOLD_PCT) / 100))
delta=$(awk "BEGIN { printf \"%+.1f\", ($new_ns - $base_ns) * 100.0 / $base_ns }")

echo "bench_compare.sh: $METRIC baseline ${base_ns}ns ($baseline) vs ${new_ns}ns ($candidate): ${delta}%"
if [ "$new_ns" -gt "$limit" ]; then
	echo "bench_compare.sh: FAIL — $METRIC regressed ${delta}% (threshold +${THRESHOLD_PCT}%)" >&2
	exit 1
fi
echo "bench_compare.sh: OK (threshold +${THRESHOLD_PCT}%)"
