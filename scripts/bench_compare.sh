#!/usr/bin/env sh
# bench_compare.sh — regression gate over the benchmark artifacts: diffs
# the newest BENCH_<stamp>.json on disk against the committed baseline
# (the newest BENCH_*.json tracked by git) and fails when any gated
# benchmark regresses by more than its threshold. The committed headline
# benchmarks are gated; per-benchmark thresholds reflect how noisy each
# one runs on shared CI hardware. A second, same-artifact gate bounds
# the numerics health monitor's overhead on the gradient-matching step
# (HEALTH_OVERHEAD_PCT, default 1%).
# Run via `make bench-check`, which produces the fresh artifact first.
#
#   METRICS="GradientMatchingStep FedAvgRound" sh scripts/bench_compare.sh
#   THRESHOLD_PCT_FedAvgRound=40 sh scripts/bench_compare.sh
#
# Numbers from shared CI runners are noisy; the default thresholds are
# deliberately loose so only step-function regressions (an accidental
# O(n^2), a lost parallel path, a pool bypass) trip them.
set -eu

cd "$(dirname "$0")/.."

METRICS=${METRICS:-"GradientMatchingStep FedAvgRound SampledRound UnlearnRecover NormStats"}
# Default per-benchmark thresholds (percent growth tolerated). The
# distillation microbenchmark is the tightest signal; the two
# whole-phase benchmarks cover more wall time and jitter more.
default_threshold() {
	case "$1" in
	GradientMatchingStep) echo 25 ;;
	# Single-pass streaming-stats kernel: pure compute, low jitter.
	NormStats) echo 30 ;;
	FedAvgRound) echo 30 ;;
	# The sampled round spans K=64 lazily materialized shards plus the
	# rejection sampler; shard rendering dominates and jitters the most.
	SampledRound) echo 40 ;;
	UnlearnRecover) echo 35 ;;
	*) echo "${THRESHOLD_PCT:-25}" ;;
	esac
}

baseline=$(git ls-files 'BENCH_*.json' | sort | tail -n 1)
if [ -z "$baseline" ]; then
	echo "bench_compare.sh: no committed BENCH_*.json baseline" >&2
	exit 1
fi

candidate=$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)
if [ -z "$candidate" ] || [ "$candidate" = "$baseline" ]; then
	echo "bench_compare.sh: no BENCH_*.json newer than baseline $baseline; run 'make bench' first" >&2
	exit 1
fi

# The artifacts are machine-written by bench.sh with one benchmark
# object per line, so a sed scrape is exact.
extract() {
	sed -n 's/.*"name":"'"$2"'".*"ns_per_op":\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}

status=0
for metric in $METRICS; do
	# A per-benchmark env override (THRESHOLD_PCT_<name>) beats the
	# built-in default; a blanket THRESHOLD_PCT beats unknown names.
	threshold=$(eval "echo \"\${THRESHOLD_PCT_${metric}:-}\"")
	[ -n "$threshold" ] || threshold=$(default_threshold "$metric")

	base_ns=$(extract "$baseline" "$metric")
	new_ns=$(extract "$candidate" "$metric")
	if [ -z "$base_ns" ]; then
		echo "bench_compare.sh: metric $metric missing from baseline $baseline" >&2
		status=1
		continue
	fi
	if [ -z "$new_ns" ]; then
		echo "bench_compare.sh: metric $metric missing from $candidate" >&2
		status=1
		continue
	fi

	# Integer-only check: new > base * (100 + threshold) / 100.
	limit=$((base_ns * (100 + threshold) / 100))
	delta=$(awk "BEGIN { printf \"%+.1f\", ($new_ns - $base_ns) * 100.0 / $base_ns }")

	echo "bench_compare.sh: $metric baseline ${base_ns}ns ($baseline) vs ${new_ns}ns ($candidate): ${delta}% (threshold +${threshold}%)"
	if [ "$new_ns" -gt "$limit" ]; then
		echo "bench_compare.sh: FAIL — $metric regressed ${delta}% (threshold +${threshold}%)" >&2
		status=1
	fi
done

# Health-monitor overhead gate: GradientMatchingStepHealth (sampling
# enabled at the default cadence) vs the plain GradientMatchingStep,
# compared WITHIN the candidate artifact — same run, same machine, same
# benchtime — so machine drift cancels out and the tight default bound
# is honest. HEALTH_OVERHEAD_PCT=5 relaxes it on very noisy runners;
# HEALTH_OVERHEAD_PCT="" skips the gate.
HEALTH_OVERHEAD_PCT=${HEALTH_OVERHEAD_PCT-1}
if [ -n "$HEALTH_OVERHEAD_PCT" ]; then
	plain_ns=$(extract "$candidate" "GradientMatchingStep")
	health_ns=$(extract "$candidate" "GradientMatchingStepHealth")
	if [ -z "$plain_ns" ] || [ -z "$health_ns" ]; then
		echo "bench_compare.sh: GradientMatchingStep/GradientMatchingStepHealth missing from $candidate; run 'make bench' first" >&2
		status=1
	else
		limit=$((plain_ns * (100 + HEALTH_OVERHEAD_PCT) / 100))
		delta=$(awk "BEGIN { printf \"%+.2f\", ($health_ns - $plain_ns) * 100.0 / $plain_ns }")
		echo "bench_compare.sh: health overhead ${plain_ns}ns plain vs ${health_ns}ns with monitor: ${delta}% (threshold +${HEALTH_OVERHEAD_PCT}%)"
		if [ "$health_ns" -gt "$limit" ]; then
			echo "bench_compare.sh: FAIL — health monitor adds ${delta}% to GradientMatchingStep (threshold +${HEALTH_OVERHEAD_PCT}%)" >&2
			status=1
		fi
	fi
fi

[ "$status" -eq 0 ] && echo "bench_compare.sh: OK — all gated benchmarks within threshold"
exit "$status"
