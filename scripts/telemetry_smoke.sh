#!/usr/bin/env sh
# telemetry_smoke.sh — end-to-end check of the telemetry endpoint: runs
# a short fedsim training with -telemetry-addr, scrapes /metrics after
# training finishes (the -telemetry-linger window keeps the endpoint
# up), and asserts the round/client/distill series are exposed in
# Prometheus text form. Run standalone or via the CI
# telemetry-endpoint-smoke job.
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "==> build fedsim"
go build -o "$work/fedsim" ./cmd/fedsim

echo "==> run fedsim with an ephemeral telemetry endpoint"
"$work/fedsim" -dataset mnistlike -clients 2 -rounds 2 -steps 2 -batch 8 \
	-eval-every 2 -scale quick \
	-telemetry-addr 127.0.0.1:0 -telemetry-linger 60s >"$work/log" 2>&1 &
pid=$!

# Wait for training to finish: the linger banner prints after the last
# round, so the scrape below sees the final counter values.
tries=0
until grep -q 'telemetry: lingering' "$work/log"; do
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "fedsim exited early:" >&2
		cat "$work/log" >&2
		exit 1
	fi
	tries=$((tries + 1))
	if [ "$tries" -gt 120 ]; then
		echo "timed out waiting for fedsim to finish training" >&2
		cat "$work/log" >&2
		exit 1
	fi
	sleep 1
done

addr=$(grep -om1 '127\.0\.0\.1:[0-9]*' "$work/log")
echo "==> scrape http://$addr/metrics"
curl -fsS "http://$addr/metrics" >"$work/metrics"

status=0
for series in \
	quickdrop_fl_rounds_total \
	quickdrop_fl_round_seconds_count \
	'quickdrop_fl_local_steps_total{client="0"}' \
	quickdrop_fl_samples_total \
	'quickdrop_phase_seconds_count{phase="train"}' \
	quickdrop_distill_steps_total; do
	if ! grep -qF "$series" "$work/metrics"; then
		echo "missing series: $series" >&2
		status=1
	fi
done
if [ "$(grep -c '^# TYPE ' "$work/metrics")" -lt 10 ]; then
	echo "suspiciously few metric families:" >&2
	cat "$work/metrics" >&2
	status=1
fi
# Two rounds ran, so the counter must read 2.
if ! grep -q '^quickdrop_fl_rounds_total 2$' "$work/metrics"; then
	echo "quickdrop_fl_rounds_total != 2:" >&2
	grep '^quickdrop_fl_rounds_total' "$work/metrics" >&2 || true
	status=1
fi

[ "$status" -eq 0 ] && echo "telemetry_smoke.sh: all series present"
exit "$status"
