#!/usr/bin/env sh
# telemetry_smoke.sh — end-to-end check of the telemetry endpoint: runs
# a short fedsim training with -telemetry-addr, scrapes /metrics,
# /dashboard and /api/series after training finishes (the
# -telemetry-linger window keeps the endpoint up), asserts the
# round/client/distill series are exposed, and exercises the run
# ledger: fedsim -ledger writes a manifest, `experiments report -diff`
# accepts it against itself and rejects a synthetic accuracy
# regression. Run standalone or via the CI telemetry-endpoint-smoke
# job. RUNS_DIR overrides where the ledger manifest lands (CI points it
# at the workspace to upload it as an artifact).
set -eu

cd "$(dirname "$0")/.."

work=$(mktemp -d)
RUNS_DIR=${RUNS_DIR:-"$work/runs"}
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT

echo "==> build fedsim and experiments"
go build -o "$work/fedsim" ./cmd/fedsim
go build -o "$work/experiments" ./cmd/experiments

echo "==> run fedsim with an ephemeral telemetry endpoint"
"$work/fedsim" -dataset mnistlike -clients 2 -rounds 2 -steps 2 -batch 8 \
	-eval-every 2 -scale quick -ledger "$RUNS_DIR" \
	-telemetry-addr 127.0.0.1:0 -telemetry-linger 60s >"$work/log" 2>&1 &
pid=$!

# Wait for training to finish: the linger banner prints after the last
# round, so the scrape below sees the final counter values.
tries=0
until grep -q 'telemetry: lingering' "$work/log"; do
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "fedsim exited early:" >&2
		cat "$work/log" >&2
		exit 1
	fi
	tries=$((tries + 1))
	if [ "$tries" -gt 120 ]; then
		echo "timed out waiting for fedsim to finish training" >&2
		cat "$work/log" >&2
		exit 1
	fi
	sleep 1
done

addr=$(grep -om1 '127\.0\.0\.1:[0-9]*' "$work/log")
echo "==> scrape http://$addr/metrics"
curl -fsS "http://$addr/metrics" >"$work/metrics"

status=0
for series in \
	quickdrop_fl_rounds_total \
	quickdrop_fl_round_seconds_count \
	'quickdrop_fl_local_steps_total{client="0"}' \
	quickdrop_fl_samples_total \
	'quickdrop_phase_seconds_count{phase="train"}' \
	quickdrop_distill_steps_total; do
	if ! grep -qF "$series" "$work/metrics"; then
		echo "missing series: $series" >&2
		status=1
	fi
done
if [ "$(grep -c '^# TYPE ' "$work/metrics")" -lt 10 ]; then
	echo "suspiciously few metric families:" >&2
	cat "$work/metrics" >&2
	status=1
fi
# Two rounds ran, so the counter must read 2.
if ! grep -q '^quickdrop_fl_rounds_total 2$' "$work/metrics"; then
	echo "quickdrop_fl_rounds_total != 2:" >&2
	grep '^quickdrop_fl_rounds_total' "$work/metrics" >&2 || true
	status=1
fi
# The P² quantile lines ride alongside the histogram buckets.
if ! grep -q 'quickdrop_fl_round_seconds{quantile="0.5"}' "$work/metrics"; then
	echo "missing quantile line for quickdrop_fl_round_seconds" >&2
	status=1
fi

echo "==> scrape http://$addr/dashboard"
curl -fsS "http://$addr/dashboard" >"$work/dashboard"
for want in '<!DOCTYPE html>' 'flight recorder' '<svg' 'fl_round_seconds'; do
	if ! grep -qF "$want" "$work/dashboard"; then
		echo "dashboard missing: $want" >&2
		status=1
	fi
done
# Self-contained means no external assets of any kind.
if grep -qE 'src=|href=' "$work/dashboard"; then
	echo "dashboard references external assets" >&2
	status=1
fi

echo "==> scrape http://$addr/api/series"
curl -fsS "http://$addr/api/series?n=50" >"$work/series.json"
for want in '"name":"fl_round_seconds"' '"name":"eval_accuracy"' '"points":['; do
	if ! grep -qF "$want" "$work/series.json"; then
		echo "/api/series missing: $want" >&2
		status=1
	fi
done

echo "==> check the run-ledger manifest"
manifest=$(sed -n 's/^ledger: manifest written to \(.*\)$/\1/p' "$work/log" | head -n 1)
if [ -z "$manifest" ] || [ ! -f "$manifest" ]; then
	echo "fedsim did not write a ledger manifest (RUNS_DIR=$RUNS_DIR)" >&2
	status=1
else
	for want in '"go_version"' '"eval_accuracy"' '"quickdrop_fl_round_seconds"'; do
		if ! grep -qF "$want" "$manifest"; then
			echo "manifest missing: $want" >&2
			status=1
		fi
	done

	echo "==> report -diff: a manifest against itself must pass"
	if ! "$work/experiments" report -diff "$manifest" "$manifest" >"$work/diff_ok"; then
		echo "self-diff reported a regression:" >&2
		cat "$work/diff_ok" >&2
		status=1
	fi

	echo "==> report -diff: a synthetic accuracy regression must fail"
	# Scope the perturbation to the "final" block: the same key also
	# appears under "series_total", where a float would break parsing.
	sed '/"final"/,/}/ s/"eval_accuracy": [0-9.eE+-]*/"eval_accuracy": -1.0/' "$manifest" >"$work/regressed.json"
	if "$work/experiments" report -diff "$manifest" "$work/regressed.json" >"$work/diff_bad" 2>&1; then
		echo "report -diff accepted a synthetic accuracy regression:" >&2
		cat "$work/diff_bad" >&2
		status=1
	elif ! grep -q 'REGRESSION' "$work/diff_bad"; then
		echo "report -diff failed without naming the regression:" >&2
		cat "$work/diff_bad" >&2
		status=1
	fi
fi

[ "$status" -eq 0 ] && echo "telemetry_smoke.sh: all endpoints and the ledger round-trip are healthy"
exit "$status"
