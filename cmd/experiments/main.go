// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -id table2 -scale quick
//	experiments -id all -scale standard -repeats 3
//	experiments report runs/20260805T...json
//	experiments report -diff runs/old.json runs/new.json
//
// IDs: table1 table2 table3 table4 table5 table6 fig2 fig3 fig4 fig5 fig6
// ablation-distance ablation-init ablation-augment ablation-objective
// ext-sample all
//
// The report subcommand reads run-ledger manifests (written with
// -ledger here or on fedsim/quickdrop). With -diff it compares two
// manifests old→new against per-metric thresholds and exits nonzero
// when any metric regressed — the CI regression gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"quickdrop/internal/experiments"
	"quickdrop/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "report" {
		report(os.Args[2:])
		return
	}
	id := flag.String("id", "all", "experiment id (tableN, figN, ablation-*, ext-sample, all)")
	scaleName := flag.String("scale", "quick", "scale preset: quick|standard|large")
	repeats := flag.Int("repeats", 1, "average method tables and ablations over this many seeds (paper: 5)")
	telAddr := flag.String("telemetry-addr", "", "serve /metrics, /dashboard, /api/series, /debug/vars and /debug/pprof on this address (\":0\" for ephemeral)")
	eventsOut := flag.String("events", "", "append JSONL cost events to this file")
	ledgerDir := flag.String("ledger", "", "write a run manifest into this directory (e.g. runs/)")
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	sc.Repeats = *repeats

	if *telAddr != "" || *ledgerDir != "" {
		// Pre-register enough per-client series for every harness (they
		// use at most 10 clients).
		sc.Telemetry = telemetry.NewPipeline(telemetry.NewRegistry(), telemetry.NewTracer(0), 16)
	}
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, sc.Telemetry)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry: serving on http://%s/metrics (dashboard: /dashboard)\n", srv.Addr())
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }()
		sc.Events = telemetry.NewEventLog(f)
	}
	ids := []string{*id}
	if *id == "all" {
		ids = experiments.IDs()
	}
	for _, one := range ids {
		start := time.Now()
		fmt.Printf("=== %s (scale %s) ===\n", one, sc.Name)
		if err := experiments.Run(one, sc, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", one, err))
		}
		fmt.Printf("--- %s done in %s ---\n\n", one, time.Since(start).Round(time.Millisecond))
	}
	if *ledgerDir != "" {
		m := telemetry.BuildManifest(sc.Telemetry, "experiments", sc.Seed, map[string]string{
			"id":      *id,
			"scale":   sc.Name,
			"repeats": fmt.Sprint(*repeats),
		})
		path, err := telemetry.WriteManifest(*ledgerDir, m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ledger: manifest written to %s\n", path)
	}
}

// report implements the `experiments report` subcommand: summarize one
// or more manifests, or -diff two against the regression thresholds.
func report(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	diff := fs.Bool("diff", false, "compare two manifests (old new); exit nonzero on regression")
	accDrop := fs.Float64("accuracy-drop", 0.05, "tolerated absolute accuracy drop (forget-set: rise)")
	timeGrow := fs.Float64("time-grow-pct", 25, "tolerated percentage growth of *_seconds sums")
	gradGrow := fs.Float64("grad-norm-grow-pct", 100, "tolerated percentage growth of the max gradient norm (health summary)")
	if err := fs.Parse(args); err != nil {
		fatal(err)
	}

	if *diff {
		if fs.NArg() != 2 {
			fatal(fmt.Errorf("report -diff needs exactly two manifests (old new), got %d", fs.NArg()))
		}
		oldM, err := telemetry.ReadManifest(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		newM, err := telemetry.ReadManifest(fs.Arg(1))
		if err != nil {
			fatal(err)
		}
		entries, regressed := telemetry.Diff(oldM, newM, telemetry.DiffOptions{
			AccuracyDrop: *accDrop, TimeGrowPct: *timeGrow, GradNormGrowPct: *gradGrow,
		})
		fmt.Printf("diff %s (%s) -> %s (%s): %d metrics compared\n",
			oldM.Stamp, oldM.Tool, newM.Stamp, newM.Tool, len(entries))
		for _, e := range entries {
			mark := "ok  "
			if e.Regression {
				mark = "FAIL"
			}
			fmt.Printf("  %s %-48s %12.6f -> %12.6f (%+.6f)", mark, e.Metric, e.Old, e.New, e.Delta)
			if e.Reason != "" {
				fmt.Printf("  %s", e.Reason)
			}
			fmt.Println()
		}
		if regressed {
			fmt.Println("result: REGRESSION")
			os.Exit(1)
		}
		fmt.Println("result: ok")
		return
	}

	if fs.NArg() == 0 {
		fatal(fmt.Errorf("report needs at least one manifest path (or -diff old new)"))
	}
	for _, path := range fs.Args() {
		m, err := telemetry.ReadManifest(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: tool=%s seed=%d go=%s\n", m.Stamp, m.Tool, m.Seed, m.GoVersion)
		for k, v := range m.Config {
			fmt.Printf("  config %s=%s\n", k, v)
		}
		for _, name := range sortedKeys(m.Final) {
			fmt.Printf("  final %s=%.6f (%d samples)\n", name, m.Final[name], m.SeriesTotal[name])
		}
		if m.RoundLatency.Count > 0 {
			fmt.Printf("  round latency: n=%d p50=%s p95=%s p99=%s\n",
				m.RoundLatency.Count, m.RoundLatency.P50, m.RoundLatency.P95, m.RoundLatency.P99)
		}
		if h := m.Health; h != nil {
			status := "healthy"
			if h.Tripped {
				status = fmt.Sprintf("TRIPPED (%s in phase %s)", h.Verdict, h.Phase)
			}
			fmt.Printf("  health: %s trips=%d nan_events=%d max_grad_norm=%.6g max_update_ratio=%.6g\n",
				status, h.Trips, h.NaNEvents, h.MaxGradNorm, h.MaxUpdateRatio)
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
