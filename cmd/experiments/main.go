// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -id table2 -scale quick
//	experiments -id all -scale standard -repeats 3
//
// IDs: table1 table2 table3 table4 table5 table6 fig2 fig3 fig4 fig5 fig6
// ablation-distance ablation-init ablation-augment ablation-objective
// ext-sample all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"quickdrop/internal/experiments"
)

func main() {
	id := flag.String("id", "all", "experiment id (tableN, figN, ablation-*, ext-sample, all)")
	scaleName := flag.String("scale", "quick", "scale preset: quick|standard|large")
	repeats := flag.Int("repeats", 1, "average method tables and ablations over this many seeds (paper: 5)")
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	sc.Repeats = *repeats
	ids := []string{*id}
	if *id == "all" {
		ids = experiments.IDs()
	}
	for _, one := range ids {
		start := time.Now()
		fmt.Printf("=== %s (scale %s) ===\n", one, sc.Name)
		if err := experiments.Run(one, sc, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", one, err))
		}
		fmt.Printf("--- %s done in %s ---\n\n", one, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
