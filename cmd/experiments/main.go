// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -id table2 -scale quick
//	experiments -id all -scale standard -repeats 3
//
// IDs: table1 table2 table3 table4 table5 table6 fig2 fig3 fig4 fig5 fig6
// ablation-distance ablation-init ablation-augment ablation-objective
// ext-sample all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"quickdrop/internal/experiments"
	"quickdrop/internal/telemetry"
)

func main() {
	id := flag.String("id", "all", "experiment id (tableN, figN, ablation-*, ext-sample, all)")
	scaleName := flag.String("scale", "quick", "scale preset: quick|standard|large")
	repeats := flag.Int("repeats", 1, "average method tables and ablations over this many seeds (paper: 5)")
	telAddr := flag.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (\":0\" for ephemeral)")
	eventsOut := flag.String("events", "", "append JSONL cost events to this file")
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	sc.Repeats = *repeats

	if *telAddr != "" {
		reg := telemetry.NewRegistry()
		tracer := telemetry.NewTracer(0)
		// Pre-register enough per-client series for every harness (they
		// use at most 10 clients).
		sc.Telemetry = telemetry.NewPipeline(reg, tracer, 16)
		srv, err := telemetry.Serve(*telAddr, reg, tracer)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry: serving on http://%s/metrics\n", srv.Addr())
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }()
		sc.Events = telemetry.NewEventLog(f)
	}
	ids := []string{*id}
	if *id == "all" {
		ids = experiments.IDs()
	}
	for _, one := range ids {
		start := time.Now()
		fmt.Printf("=== %s (scale %s) ===\n", one, sc.Name)
		if err := experiments.Run(one, sc, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", one, err))
		}
		fmt.Printf("--- %s done in %s ---\n\n", one, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
