// Command fedsim runs plain FedAvg training (no unlearning) on a
// synthetic dataset and reports round-by-round accuracy — useful for
// calibrating substrate scales and for comparing against the QuickDrop
// pipeline's training stage.
//
// Usage:
//
//	fedsim -dataset mnistlike -clients 10 -rounds 20 -alpha 0.1
//
// With -telemetry-addr, fedsim serves Prometheus metrics on
// /metrics, the live flight-recorder dashboard on /dashboard, series
// JSON on /api/series, expvar on /debug/vars and pprof on /debug/pprof
// while training (use ":0" for an ephemeral port; the bound address is
// printed). -telemetry-linger keeps the endpoint up after training so
// scrapers can collect the final state. -ledger writes a run manifest
// (config, seed, metric summaries, quantiles) into the given directory
// for `experiments report -diff`.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/experiments"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/telemetry"
)

func main() {
	var (
		dataset    = flag.String("dataset", "mnistlike", "dataset: mnistlike|cifarlike|svhnlike")
		clients    = flag.Int("clients", 10, "number of FL clients")
		alpha      = flag.Float64("alpha", 0.1, "Dirichlet concentration (0 = IID)")
		rounds     = flag.Int("rounds", 20, "global FL rounds")
		steps      = flag.Int("steps", 5, "local steps per round (T)")
		batch      = flag.Int("batch", 16, "minibatch size")
		lr         = flag.Float64("lr", 0.1, "learning rate")
		partic     = flag.Float64("participation", 1, "client participation fraction per round")
		scaleName  = flag.String("scale", "quick", "substrate scale preset")
		seed       = flag.Int64("seed", 1, "random seed")
		every      = flag.Int("eval-every", 5, "evaluate every N rounds")
		concurrent = flag.Bool("concurrent", false, "use the goroutine-per-client runtime")
		telAddr    = flag.String("telemetry-addr", "", "serve /metrics, /dashboard, /api/series, /debug/vars and /debug/pprof on this address (\":0\" for ephemeral)")
		telLinger  = flag.Duration("telemetry-linger", 0, "keep the telemetry endpoint up this long after training")
		ledgerDir  = flag.String("ledger", "", "write a run manifest into this directory (e.g. runs/)")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	sc.Seed = *seed
	setup, err := experiments.NewSetup(*dataset, *clients, *alpha, sc)
	if err != nil {
		fatal(err)
	}
	model := nn.NewConvNet(setup.Arch, rand.New(rand.NewSource(*seed)))
	rng := rand.New(rand.NewSource(*seed + 1))

	var pipe *telemetry.Pipeline
	var srv *telemetry.Server
	if *telAddr != "" || *ledgerDir != "" {
		pipe = telemetry.NewPipeline(telemetry.NewRegistry(), telemetry.NewTracer(0), *clients)
	}
	if *telAddr != "" {
		srv, err = telemetry.Serve(*telAddr, pipe)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry: serving on http://%s/metrics (dashboard: /dashboard)\n", srv.Addr())
	}

	fmt.Printf("fedsim: %s, %d clients, alpha=%.2g, heterogeneity=%.3f, %d params\n",
		*dataset, *clients, *alpha, data.HeterogeneityStat(setup.Clients), model.NumParams())

	var counter optim.Counter
	factory := func() *nn.Model { return nn.NewConvNet(setup.Arch, rand.New(rand.NewSource(*seed))) }
	start := telemetry.StartTimer()
	done := 0
	for done < *rounds {
		step := *every
		if done+step > *rounds {
			step = *rounds - done
		}
		cfg := fl.PhaseConfig{
			Rounds: step, LocalSteps: *steps, BatchSize: *batch, LR: *lr,
			Participation: *partic, Counter: &counter,
			Telemetry: pipe, Phase: "train",
		}
		var err error
		if *concurrent {
			_, err = fl.RunPhaseConcurrent(context.Background(), model, factory, setup.Clients, cfg, rng)
		} else {
			_, err = fl.RunPhase(model, setup.Clients, cfg, rng)
		}
		if err != nil {
			fatal(err)
		}
		done += step
		acc := eval.Accuracy(model, setup.Test)
		pipe.RecordAccuracy(float64(done), acc)
		fmt.Printf("round %3d: test accuracy %.2f%% (%s elapsed, %d grad evals)\n",
			done, 100*acc, start.Elapsed().Round(time.Millisecond), counter.GradEvals)
	}
	pipe.Close()
	if *ledgerDir != "" {
		m := telemetry.BuildManifest(pipe, "fedsim", *seed, map[string]string{
			"dataset": *dataset,
			"clients": fmt.Sprint(*clients),
			"alpha":   fmt.Sprint(*alpha),
			"rounds":  fmt.Sprint(*rounds),
			"scale":   *scaleName,
		})
		path, err := telemetry.WriteManifest(*ledgerDir, m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ledger: manifest written to %s\n", path)
	}
	if srv != nil && *telLinger > 0 {
		fmt.Printf("telemetry: lingering %s on http://%s/metrics\n", *telLinger, srv.Addr())
		time.Sleep(*telLinger)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsim:", err)
	os.Exit(1)
}
