// Command fedsim runs plain FedAvg training (no unlearning) on a
// synthetic dataset and reports round-by-round accuracy — useful for
// calibrating substrate scales and for comparing against the QuickDrop
// pipeline's training stage.
//
// Usage:
//
//	fedsim -dataset mnistlike -clients 10 -rounds 20 -alpha 0.1
//
// Two cohort modes exist. The default materializes every client's shard
// up front (the original behavior, fine up to thousands of clients).
// With -lazy the cohort is a recipe: any client's shard is derived on
// demand from (seed, client ID), so -clients can be a million without
// allocating a million datasets — pair it with -sample-k so each round
// draws K participants instead of enumerating the cohort:
//
//	fedsim -lazy -clients 1000000 -sample-k 64 -per-client 64 -rounds 5
//
// With -telemetry-addr, fedsim serves Prometheus metrics on
// /metrics, the live flight-recorder dashboard on /dashboard, series
// JSON on /api/series, expvar on /debug/vars and pprof on /debug/pprof
// while training (use ":0" for an ephemeral port; the bound address is
// printed). -telemetry-linger keeps the endpoint up after training so
// scrapers can collect the final state. -ledger writes a run manifest
// (config, seed, metric summaries, quantiles) into the given directory
// for `experiments report -diff`.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/experiments"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/optim"
	"quickdrop/internal/telemetry"
	"quickdrop/internal/telemetry/health"
)

func main() {
	var (
		dataset    = flag.String("dataset", "mnistlike", "dataset: mnistlike|cifarlike|svhnlike")
		clients    = flag.Int("clients", 10, "number of FL clients")
		alpha      = flag.Float64("alpha", 0.1, "Dirichlet concentration (0 = IID)")
		rounds     = flag.Int("rounds", 20, "global FL rounds")
		steps      = flag.Int("steps", 5, "local steps per round (T)")
		batch      = flag.Int("batch", 16, "minibatch size")
		lr         = flag.Float64("lr", 0.1, "learning rate")
		partic     = flag.Float64("participation", 1, "client participation fraction per round")
		sampleK    = flag.Int("sample-k", 0, "sample K clients per round from the registry (0 = use -participation)")
		workers    = flag.Int("workers", 0, "bounded worker pool size for -concurrent (0 = GOMAXPROCS)")
		lazy       = flag.Bool("lazy", false, "derive client shards on demand instead of materializing the partition")
		perClient  = flag.Int("per-client", 64, "samples per client in -lazy mode")
		scaleName  = flag.String("scale", "quick", "substrate scale preset")
		seed       = flag.Int64("seed", 1, "random seed")
		every      = flag.Int("eval-every", 5, "evaluate every N rounds")
		concurrent = flag.Bool("concurrent", false, "use the bounded-pool concurrent runtime")
		memStats   = flag.Bool("memstats", false, "print heap statistics after training (for scale smoke tests)")
		telAddr    = flag.String("telemetry-addr", "", "serve /metrics, /dashboard, /api/series, /debug/vars and /debug/pprof on this address (\":0\" for ephemeral)")
		telLinger  = flag.Duration("telemetry-linger", 0, "keep the telemetry endpoint up this long after training")
		ledgerDir  = flag.String("ledger", "", "write a run manifest into this directory (e.g. runs/)")

		healthOn    = flag.Bool("health", false, "enable the numerics health monitor and divergence watchdog")
		healthEvery = flag.Int("health-sample-every", 0, "sample per-layer gradient statistics every N optimizer steps (0 = default 16)")
		healthGrad  = flag.Float64("health-grad-max", 0, "watchdog trip threshold on a layer's gradient L2 norm (0 = default 1e3)")
		healthSpike = flag.Float64("health-loss-spike", 0, "watchdog trip factor on loss vs its per-phase EWMA (0 = default 20)")
		healthRatio = flag.Float64("health-ratio-max", 0, "watchdog trip threshold on the update/parameter norm ratio (0 = default 50)")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	sc.Seed = *seed

	// Assemble the cohort: either the eager slice-backed setup or a lazy
	// recipe-backed registry that never materializes the full partition.
	var (
		reg  fl.ClientRegistry
		test *data.Dataset
		arch nn.ConvNetConfig
		het  string
	)
	if *lazy {
		spec, err := data.SpecByName(*dataset, sc.ImageSize, sc.PerClass)
		if err != nil {
			fatal(err)
		}
		_, test = data.Generate(spec, *seed)
		pspec := data.PartitionSpec{
			Data: spec, Clients: *clients, SamplesPerClient: *perClient,
			Seed: *seed + 1, Scheme: data.SchemeIID,
		}
		if *alpha > 0 {
			pspec.Scheme, pspec.Alpha = data.SchemeDirichlet, *alpha
		}
		lc, err := data.NewLazyCohort(pspec)
		if err != nil {
			fatal(err)
		}
		reg = lc
		arch = nn.ConvNetConfig{
			InputH: spec.H, InputW: spec.W, InputC: spec.C,
			Classes: spec.Classes, Width: sc.Width, Depth: sc.Depth,
		}
		// The heterogeneity statistic enumerates every shard — O(N) work
		// that would defeat the lazy cohort, so it is not computed here.
		het = "lazy"
	} else {
		setup, err := experiments.NewSetup(*dataset, *clients, *alpha, sc)
		if err != nil {
			fatal(err)
		}
		reg, test, arch = setup.Cohort, setup.Test, setup.Arch
		het = fmt.Sprintf("%.3f", data.HeterogeneityStat(setup.Clients))
	}

	model := nn.NewConvNet(arch, rand.New(rand.NewSource(*seed)))
	rng := rand.New(rand.NewSource(*seed + 1))

	var pipe *telemetry.Pipeline
	var srv *telemetry.Server
	if *telAddr != "" || *ledgerDir != "" {
		pipe = telemetry.NewPipeline(telemetry.NewRegistry(), telemetry.NewTracer(0), *clients)
	}
	if *telAddr != "" {
		srv, err = telemetry.Serve(*telAddr, pipe)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = srv.Close() }()
		fmt.Printf("telemetry: serving on http://%s/metrics (dashboard: /dashboard)\n", srv.Addr())
	}

	var mon *health.Monitor
	if *healthOn {
		mon = health.New(health.Config{
			SampleEvery:     *healthEvery,
			GradNormMax:     *healthGrad,
			LossSpikeFactor: *healthSpike,
			UpdateRatioMax:  *healthRatio,
			Events:          telemetry.NewEventLog(os.Stderr),
		}, pipe)
		mon.BindLayers(model.ParamNames())
	}

	fmt.Printf("fedsim: %s, %d clients, alpha=%.2g, heterogeneity=%s, %d params\n",
		*dataset, *clients, *alpha, het, model.NumParams())

	participation := *partic
	if *sampleK > 0 {
		participation = 0 // sampled mode replaces the fraction
	}
	var counter optim.Counter
	factory := func() *nn.Model { return nn.NewConvNet(arch, rand.New(rand.NewSource(*seed))) }
	start := telemetry.StartTimer()
	done := 0
	for done < *rounds {
		step := *every
		if done+step > *rounds {
			step = *rounds - done
		}
		cfg := fl.PhaseConfig{
			Rounds: step, LocalSteps: *steps, BatchSize: *batch, LR: *lr,
			Participation: participation, SampleK: *sampleK, Workers: *workers,
			Counter: &counter, Telemetry: pipe, Health: mon, Phase: "train",
		}
		var err error
		if *concurrent {
			_, err = fl.RunPhaseConcurrentRegistry(context.Background(), model, factory, reg, cfg, rng)
		} else {
			_, err = fl.RunPhaseRegistry(model, reg, cfg, rng)
		}
		if err != nil {
			fatal(err)
		}
		done += step
		acc := eval.Accuracy(model, test)
		pipe.RecordAccuracy(float64(done), acc)
		fmt.Printf("round %3d: test accuracy %.2f%% (%s elapsed, %d grad evals)\n",
			done, 100*acc, start.Elapsed().Round(time.Millisecond), counter.GradEvals)
	}
	pipe.Close()
	if *memStats {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		fmt.Printf("memstats: heap_alloc_bytes=%d heap_sys_bytes=%d total_alloc_bytes=%d\n",
			ms.HeapAlloc, ms.HeapSys, ms.TotalAlloc)
	}
	if *ledgerDir != "" {
		m := telemetry.BuildManifest(pipe, "fedsim", *seed, map[string]string{
			"dataset": *dataset,
			"clients": fmt.Sprint(*clients),
			"alpha":   fmt.Sprint(*alpha),
			"rounds":  fmt.Sprint(*rounds),
			"scale":   *scaleName,
		})
		m.Health = mon.Summary()
		path, err := telemetry.WriteManifest(*ledgerDir, m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ledger: manifest written to %s\n", path)
	}
	if srv != nil && *telLinger > 0 {
		fmt.Printf("telemetry: lingering %s on http://%s/metrics\n", *telLinger, srv.Addr())
		time.Sleep(*telLinger)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fedsim:", err)
	os.Exit(1)
}
