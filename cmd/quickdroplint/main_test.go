package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir switches the working directory for one test and restores it.
func chdir(t *testing.T, dir string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
}

func TestRunFlagsNegativeFixture(t *testing.T) {
	// The errcheck golden fixture doubles as the command's negative
	// fixture: it carries its own go.mod, so quickdroplint treats it as
	// a module and must exit 1 with findings.
	chdir(t, filepath.Join("..", "..", "internal", "lint", "testdata", "src", "errcheck"))
	var out, errb bytes.Buffer
	code := run([]string{"-rules", "errcheck", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "errcheck: ") {
		t.Errorf("output has no errcheck findings:\n%s", out.String())
	}
}

func TestRunPatternFiltersFindings(t *testing.T) {
	chdir(t, filepath.Join("..", "..", "internal", "lint", "testdata", "src", "errcheck"))
	var out, errb bytes.Buffer
	if code := run([]string{"./nonexistent/..."}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0 for a pattern matching nothing", code)
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output: %s", out.String())
	}
}

func TestRunGithubFormat(t *testing.T) {
	chdir(t, filepath.Join("..", "..", "internal", "lint", "testdata", "src", "errcheck"))
	var out, errb bytes.Buffer
	code := run([]string{"-rules", "errcheck", "-format", "github", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.HasPrefix(line, "::error file=") || !strings.Contains(line, ",line=") || !strings.Contains(line, "::errcheck: ") {
			t.Errorf("malformed github annotation: %q", line)
		}
	}
}

func TestRunUnknownFormat(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "junit"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunResourceRulesCleanOnTree(t *testing.T) {
	// The real module must stay clean under the resource-lifecycle rule
	// family; in particular every //lint:resource and //lint:statemachine
	// directive in the tree must parse (a malformed one is a finding).
	chdir(t, filepath.Join("..", ".."))
	var out, errb bytes.Buffer
	code := run([]string{"-rules", "resbalance,snapfreeze,statemachine,ctxflow", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; findings:\n%s%s", code, out.String(), errb.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, rule := range []string{"poolbalance", "intoalias", "hotpathalloc", "determinism", "graphfreeze", "errcheck", "lockbalance", "lockorder", "goroutineleak", "atomicmix", "wgbalance", "resbalance", "snapfreeze", "statemachine", "ctxflow"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, out.String())
		}
	}
}

func TestRunUnknownRule(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		file, pattern string
		want          bool
	}{
		{"internal/fl/fedavg.go", "./...", true},
		{"internal/fl/fedavg.go", "./internal/...", true},
		{"internal/fl/fedavg.go", "./internal/fl", true},
		{"internal/fl/fedavg.go", "./internal/fl/...", true},
		{"internal/fl/fedavg.go", "./internal/tensor", false},
		{"internal/fl/fedavg.go", "./internal/tensor/...", false},
		{"main.go", ".", true},
		{"main.go", "./internal/...", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.file, c.pattern); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.file, c.pattern, got, c.want)
		}
	}
}
