// Command quickdroplint runs the repository's static-analysis suite
// (internal/lint) over the module containing the working directory.
//
// Usage:
//
//	quickdroplint [-rules r1,r2] [-format text|github] [-list] [patterns ...]
//
// Patterns are module-root-relative package selectors in the go tool's
// style: "./..." (everything, the default), "./internal/tensor/..."
// (a subtree), or "./internal/fl" (one package). The whole module is
// always loaded and analyzed — cross-package contracts need the full
// picture — and patterns select which findings are printed.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"strings"

	"quickdrop/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("quickdroplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	format := fs.String("format", "text", `output format: "text" or "github" (workflow error annotations)`)
	list := fs.Bool("list", false, "print the rule catalogue and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "github" {
		fmt.Fprintf(stderr, "quickdroplint: unknown -format %q (want text or github)\n", *format)
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "quickdroplint:", err)
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "quickdroplint:", err)
		return 2
	}
	root, modPath, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "quickdroplint:", err)
		return 2
	}
	prog, err := lint.LoadProgram(root, modPath)
	if err != nil {
		fmt.Fprintln(stderr, "quickdroplint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n := 0
	for _, d := range lint.Run(prog, analyzers) {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		rel = filepath.ToSlash(rel)
		if !matchesAny(rel, patterns) {
			continue
		}
		if *format == "github" {
			fmt.Fprintf(stdout, "::error file=%s,line=%d,col=%d::%s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		} else {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
		n++
	}
	if n > 0 {
		fmt.Fprintf(stderr, "quickdroplint: %d finding(s)\n", n)
		return 1
	}
	return 0
}

func matchesAny(relFile string, patterns []string) bool {
	for _, p := range patterns {
		if matchPattern(relFile, p) {
			return true
		}
	}
	return false
}

// matchPattern reports whether the module-root-relative file falls
// under one go-style package pattern.
func matchPattern(relFile, pattern string) bool {
	dir := path.Dir(relFile)
	pattern = strings.TrimPrefix(pattern, "./")
	switch {
	case pattern == "..." || pattern == "" || pattern == ".":
		return true
	case strings.HasSuffix(pattern, "/..."):
		prefix := strings.TrimSuffix(pattern, "/...")
		return dir == prefix || strings.HasPrefix(dir, prefix+"/")
	default:
		return dir == strings.TrimSuffix(pattern, "/")
	}
}
