// Command distill runs QuickDrop's dataset distillation standalone: it
// trains a model on one synthetic-vision dataset while matching a compact
// synthetic set, reports how far the synthetic gradients moved toward the
// real ones, and optionally persists the distilled set for later
// unlearning.
//
// Usage:
//
//	distill -dataset cifarlike -s 10 -rounds 10 -out synthetic.bin
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	ad "quickdrop/internal/autodiff"
	"quickdrop/internal/data"
	"quickdrop/internal/distill"
	"quickdrop/internal/experiments"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
)

func main() {
	var (
		dataset   = flag.String("dataset", "cifarlike", "dataset: mnistlike|cifarlike|svhnlike")
		scaleName = flag.String("scale", "quick", "substrate scale preset")
		s         = flag.Float64("s", 10, "distillation scale parameter")
		rounds    = flag.Int("rounds", 10, "training rounds to distill across")
		groups    = flag.Int("groups", 1, "sub-class groups per class (sample-level granularity)")
		objective = flag.String("objective", "gradient", "distillation objective: gradient|distribution")
		out       = flag.String("out", "", "write the distilled dataset to this file")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}
	sc.Seed = *seed
	setup, err := experiments.NewSetup(*dataset, 1, 0, sc)
	if err != nil {
		fatal(err)
	}
	client := setup.Clients[0]

	cfg := distill.DefaultConfig()
	cfg.Scale = *s
	cfg.Groups = *groups
	switch *objective {
	case "gradient":
		cfg.Objective = distill.GradientMatching
	case "distribution":
		cfg.Objective = distill.DistributionMatching
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	rng := rand.New(rand.NewSource(*seed))
	matcher := distill.NewMatcher(cfg, data.NewCohort([]*data.Dataset{client}), rng)
	model := nn.NewConvNet(setup.Arch, rng)

	before := gradientDistance(model, client, matcher.Sets[0], cfg.Eps)
	start := time.Now()
	if _, err := fl.RunPhase(model, []*data.Dataset{client}, fl.PhaseConfig{
		Rounds: *rounds, LocalSteps: sc.LocalSteps, BatchSize: sc.BatchSize, LR: 0.1,
		Hook: matcher.Hook(),
	}, rng); err != nil {
		fatal(err)
	}
	after := gradientDistance(model, client, matcher.Sets[0], cfg.Eps)

	syn := matcher.Sets[0]
	fmt.Printf("distilled %d real samples into %d synthetic (%s, %d groups/class)\n",
		client.Len(), syn.Len(), cfg.Objective, *groups)
	fmt.Printf("gradient distance at final model: %.4f → %.4f (lower is better)\n", before, after)
	fmt.Printf("training+distillation took %s (distillation share %s, %d grad evals)\n",
		time.Since(start).Round(time.Millisecond), matcher.DDTime.Round(time.Millisecond), matcher.Counter.GradEvals)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if _, err := syn.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("synthetic dataset written to %s\n", *out)
	}
}

// gradientDistance measures the class-averaged grouped-cosine distance
// between real and synthetic gradients at the current model.
func gradientDistance(model *nn.Model, real, syn *data.Dataset, eps float64) float64 {
	total, classes := 0.0, 0
	for c := 0; c < real.Classes; c++ {
		r, s := real.OfClass(c), syn.OfClass(c)
		if r.Len() == 0 || s.Len() == 0 {
			continue
		}
		gD := classGrads(model, r)
		gS := classGrads(model, s)
		total += distill.MatchDistance(gS, gD, eps).Item()
		classes++
	}
	if classes == 0 {
		return 0
	}
	return total / float64(classes)
}

func classGrads(model *nn.Model, ds *data.Dataset) []*ad.Value {
	x, labels := ds.All()
	bound := model.Bind()
	loss := nn.CrossEntropy(bound.Forward(ad.Const(x)), nn.OneHot(labels, model.Classes))
	gs := ad.MustGrad(loss, bound.ParamVars())
	out := make([]*ad.Value, len(gs))
	for i, g := range gs {
		out[i] = ad.Detach(g)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distill:", err)
	os.Exit(1)
}
