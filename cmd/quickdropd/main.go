// Command quickdropd is the unlearning-as-a-service daemon: it trains
// a QuickDrop system on a synthetic federated cohort, then serves
// forget requests over HTTP/JSON. Concurrent requests coalesce into
// one batched SGA+recovery pass; every pass publishes an immutable
// copy-on-write model snapshot that inference reads never block on,
// and every request leaves a before/after forget-set accuracy entry in
// the run-ledger audit trail.
//
// Usage:
//
//	quickdropd -dataset mnistlike -clients 10 -alpha 0.1 -addr :8080
//	quickdropd -lazy -clients 100000 -sample-k 32 -per-client 64 -rounds 5
//
// API (all JSON):
//
//	POST /v1/forget        {"kind":"class","class":9} (+"wait":true to block)
//	GET  /v1/requests      every request's lifecycle state
//	GET  /v1/requests/{id} one request
//	GET  /v1/model         current snapshot version
//	POST /v1/predict       {"inputs":[[...H*W*C floats...]]}
//	GET  /v1/status        queue depth, batches, versions, drain state
//
// The telemetry surface (/metrics, /dashboard, /api/series,
// /debug/pprof) is mounted on the same mux. On SIGINT/SIGTERM the
// daemon drains: queued requests finish (still coalesced), then the
// ledger manifest — including the audit trail — is written.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/data"
	"quickdrop/internal/eval"
	"quickdrop/internal/experiments"
	"quickdrop/internal/fl"
	"quickdrop/internal/nn"
	"quickdrop/internal/serve"
	"quickdrop/internal/telemetry"
	"quickdrop/internal/telemetry/health"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickdropd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset      = flag.String("dataset", "mnistlike", "dataset: mnistlike|cifarlike|svhnlike")
		clients      = flag.Int("clients", 10, "number of FL clients")
		alpha        = flag.Float64("alpha", 0.1, "Dirichlet non-IID concentration (0 = IID)")
		scaleName    = flag.String("scale", "quick", "substrate scale: quick|standard|large")
		distillScale = flag.Float64("s", 100, "distillation scale parameter s (|S_ic| = ceil(|D_ic|/s))")
		rounds       = flag.Int("rounds", 0, "override training rounds (0 = scale preset)")
		lazy         = flag.Bool("lazy", false, "derive client shards on demand instead of materializing the partition")
		perClient    = flag.Int("per-client", 64, "samples per client in -lazy mode")
		sampleK      = flag.Int("sample-k", 0, "sample K clients per training round (0 = full participation)")
		seed         = flag.Int64("seed", 1, "random seed")
		addr         = flag.String("addr", "127.0.0.1:8080", "serve the API on this address (\":0\" for ephemeral)")
		queueCap     = flag.Int("queue", serve.DefaultQueueCap, "bounded forget-request queue capacity")
		linger       = flag.Duration("linger", 250*time.Millisecond, "coalescing window after the first request of a batch")
		sequential   = flag.Bool("sequential", false, "disable coalescing: one request per batch, in order")
		ledgerDir    = flag.String("ledger", "", "write a run manifest (with the audit trail) into this directory on shutdown")

		healthOn    = flag.Bool("health", false, "enable the numerics health monitor and SGA divergence watchdog")
		healthEvery = flag.Int("health-sample-every", 0, "sample per-layer gradient statistics every N optimizer steps (0 = default 16)")
		healthGrad  = flag.Float64("health-grad-max", 0, "watchdog trip threshold on a layer's gradient L2 norm (0 = default 1e3)")
		healthSpike = flag.Float64("health-loss-spike", 0, "watchdog trip factor on loss vs its per-phase EWMA (0 = default 20)")
		healthRatio = flag.Float64("health-ratio-max", 0, "watchdog trip threshold on the update/parameter norm ratio (0 = default 50)")
		injectNaN   = flag.String("inject-nan", "", "fault injection: plant a NaN in the model before this phase runs (e.g. \"unlearn\"; testing only)")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	sc.Seed = *seed

	// Cohort assembly mirrors fedsim: eager materialized shards by
	// default, a recipe-backed lazy registry for registry-scale cohorts.
	var (
		reg  fl.ClientRegistry
		test *data.Dataset
		arch nn.ConvNetConfig
		cfg  core.Config
	)
	if *lazy {
		spec, err := data.SpecByName(*dataset, sc.ImageSize, sc.PerClass)
		if err != nil {
			return err
		}
		_, test = data.Generate(spec, *seed)
		pspec := data.PartitionSpec{
			Data: spec, Clients: *clients, SamplesPerClient: *perClient,
			Seed: *seed + 1, Scheme: data.SchemeIID,
		}
		if *alpha > 0 {
			pspec.Scheme, pspec.Alpha = data.SchemeDirichlet, *alpha
		}
		lc, err := data.NewLazyCohort(pspec)
		if err != nil {
			return err
		}
		reg = lc
		arch = nn.ConvNetConfig{
			InputH: spec.H, InputW: spec.W, InputC: spec.C,
			Classes: spec.Classes, Width: sc.Width, Depth: sc.Depth,
		}
		cfg = core.DefaultConfig(arch)
		cfg.Train = core.PhaseParams{Rounds: sc.TrainRound, LocalSteps: sc.LocalSteps,
			BatchSize: sc.BatchSize, LR: 0.1}
		cfg.Unlearn.LocalSteps, cfg.Unlearn.BatchSize = sc.LocalSteps, sc.BatchSize
		cfg.Recover.LocalSteps, cfg.Recover.BatchSize = sc.LocalSteps, sc.BatchSize
		cfg.Relearn.LocalSteps, cfg.Relearn.BatchSize = sc.LocalSteps, sc.BatchSize
		cfg.Seed = *seed
	} else {
		setup, err := experiments.NewSetup(*dataset, *clients, *alpha, sc)
		if err != nil {
			return err
		}
		reg, test, arch = setup.Cohort, setup.Test, setup.Arch
		cfg = setup.CoreConfig()
	}
	cfg.Distill.Scale = *distillScale
	cfg.Train.SampleK = *sampleK
	if *rounds > 0 {
		cfg.Train.Rounds = *rounds
	}

	pipe := telemetry.NewPipeline(telemetry.NewRegistry(), telemetry.NewTracer(0), *clients)
	cfg.Telemetry = pipe
	defer pipe.Close()

	var mon *health.Monitor
	if *healthOn {
		mon = health.New(health.Config{
			SampleEvery:     *healthEvery,
			GradNormMax:     *healthGrad,
			LossSpikeFactor: *healthSpike,
			UpdateRatioMax:  *healthRatio,
			Events:          telemetry.NewEventLog(os.Stderr),
		}, pipe)
		cfg.Health = mon
		cfg.PoisonPhase = *injectNaN
	}

	sys, err := core.NewSystem(cfg, reg)
	if err != nil {
		return err
	}
	mon.BindLayers(sys.Model.ParamNames())
	fmt.Printf("quickdropd: training %d clients on %s (alpha=%.2g, %d rounds, s=%g)...\n",
		*clients, *dataset, *alpha, cfg.Train.Rounds, cfg.Distill.Scale)
	start := time.Now()
	if _, err := sys.Train(); err != nil {
		return err
	}
	fmt.Printf("quickdropd: trained in %s; test accuracy %.2f%%; distillation overhead %s\n",
		time.Since(start).Round(time.Millisecond),
		100*eval.Accuracy(sys.Model, test),
		sys.Matcher.DDTime.Round(time.Millisecond))

	srv := serve.New(serve.Config{
		System:    sys,
		Evaluator: serve.CohortEvaluator{Clients: reg, Test: test},
		ModelFactory: func() *nn.Model {
			return nn.NewConvNet(arch, rand.New(rand.NewSource(*seed)))
		},
		QueueCap:   *queueCap,
		Linger:     *linger,
		Sequential: *sequential,
		Telemetry:  pipe,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	srv.Start()
	// The smoke scripts grep this line for the bound address.
	fmt.Printf("quickdropd: serving on http://%s (dashboard: /dashboard)\n", ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("quickdropd: %v — draining...\n", sig)
	case err := <-errCh:
		return fmt.Errorf("http server: %w", err)
	}

	// Drain order: finish the queued unlearning work first (new posts
	// get 503 while the backlog runs), then stop the HTTP listener, then
	// write the ledger so the manifest holds every audit entry.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return err
	}
	st := srv.Stats()
	fmt.Printf("quickdropd: drained — %d batches, %d published, %d failed, model version %d\n",
		st.Batches, st.Published, st.Failed, st.ModelVersion)

	if *ledgerDir != "" {
		m := telemetry.BuildManifest(pipe, "quickdropd", *seed, map[string]string{
			"dataset": *dataset,
			"clients": fmt.Sprint(*clients),
			"alpha":   fmt.Sprint(*alpha),
			"scale":   *scaleName,
			"queue":   fmt.Sprint(*queueCap),
			"linger":  linger.String(),
		})
		m.Health = mon.Summary()
		path, err := telemetry.WriteManifest(*ledgerDir, m)
		if err != nil {
			return err
		}
		fmt.Printf("quickdropd: ledger manifest written to %s\n", path)
	}
	return nil
}
