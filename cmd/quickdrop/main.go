// Command quickdrop runs the full QuickDrop federated-unlearning pipeline
// on a synthetic dataset: federated training with in-situ distillation,
// then a stream of unlearning/relearning requests.
//
// Usage:
//
//	quickdrop -dataset cifarlike -clients 10 -alpha 0.1 \
//	    -unlearn-class 9 -relearn -model out.bin
//	quickdrop -dataset mnistlike -clients 20 -unlearn-client 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"quickdrop/internal/core"
	"quickdrop/internal/eval"
	"quickdrop/internal/experiments"
	"quickdrop/internal/telemetry"
)

// main delegates to run so that every error path exits nonzero through
// a single site AND deferred cleanups (telemetry server, open files)
// still execute — os.Exit inside the work function would skip them and
// smoke scripts could not trust the exit code.
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickdrop:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dataset       = flag.String("dataset", "cifarlike", "dataset: mnistlike|cifarlike|svhnlike")
		clients       = flag.Int("clients", 10, "number of FL clients")
		alpha         = flag.Float64("alpha", 0.1, "Dirichlet non-IID concentration (0 = IID)")
		scaleName     = flag.String("scale", "quick", "substrate scale: quick|standard|large")
		distillScale  = flag.Float64("s", 100, "distillation scale parameter s (|S_ic| = ceil(|D_ic|/s))")
		unlearnClass  = flag.Int("unlearn-class", -1, "class to unlearn (class-level request)")
		unlearnClient = flag.Int("unlearn-client", -1, "client to unlearn (client-level request)")
		relearn       = flag.Bool("relearn", false, "relearn the request after unlearning")
		modelOut      = flag.String("model", "", "write final model parameters to this file")
		saveState     = flag.String("save", "", "persist full system state (model + synthetic sets + forget ledger) to this file")
		loadState     = flag.String("load", "", "restore system state instead of training")
		seed          = flag.Int64("seed", 1, "random seed")
		telAddr       = flag.String("telemetry-addr", "", "serve /metrics, /dashboard, /api/series, /debug/vars and /debug/pprof on this address (\":0\" for ephemeral)")
		eventsOut     = flag.String("events", "", "append JSONL telemetry events (spans) to this file")
		ledgerDir     = flag.String("ledger", "", "write a run manifest into this directory (e.g. runs/)")
	)
	flag.Parse()

	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	sc.Seed = *seed
	setup, err := experiments.NewSetup(*dataset, *clients, *alpha, sc)
	if err != nil {
		return err
	}
	cfg := setup.CoreConfig()
	cfg.Distill.Scale = *distillScale

	var tracer *telemetry.Tracer
	if *telAddr != "" || *eventsOut != "" || *ledgerDir != "" {
		tracer = telemetry.NewTracer(0)
		cfg.Telemetry = telemetry.NewPipeline(telemetry.NewRegistry(), tracer, *clients)
		if *telAddr != "" {
			srv, err := telemetry.Serve(*telAddr, cfg.Telemetry)
			if err != nil {
				return err
			}
			defer func() { _ = srv.Close() }()
			fmt.Printf("telemetry: serving on http://%s/metrics (dashboard: /dashboard)\n", srv.Addr())
		}
	}

	sys, err := core.NewSystem(cfg, setup.Cohort)
	if err != nil {
		return err
	}

	if *loadState != "" {
		f, err := os.Open(*loadState)
		if err != nil {
			return err
		}
		if err := sys.LoadState(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("restored state from %s; test accuracy %.2f%%\n",
			*loadState, 100*eval.Accuracy(sys.Model, setup.Test))
	} else {
		fmt.Printf("training %d clients on %s (alpha=%.2g, %d rounds)...\n",
			*clients, *dataset, *alpha, cfg.Train.Rounds)
		start := time.Now()
		if _, err := sys.Train(); err != nil {
			return err
		}
		fmt.Printf("trained in %s; test accuracy %.2f%%; distillation overhead %s\n",
			time.Since(start).Round(time.Millisecond),
			100*eval.Accuracy(sys.Model, setup.Test),
			sys.Matcher.DDTime.Round(time.Millisecond))
	}

	var reqs []core.Request
	if *unlearnClass >= 0 {
		reqs = append(reqs, core.Request{Kind: core.ClassLevel, Class: *unlearnClass})
	}
	if *unlearnClient >= 0 {
		reqs = append(reqs, core.Request{Kind: core.ClientLevel, Client: *unlearnClient})
	}
	for _, req := range reqs {
		rep, err := sys.Unlearn(req)
		if err != nil {
			return fmt.Errorf("%v: %w", req, err)
		}
		f, r := setup.SplitAccuracy(sys.Model, req)
		cfg.Telemetry.RecordSplitAccuracy(f, r)
		fmt.Printf("%v: F-Set %.2f%%, R-Set %.2f%% (unlearn %s on %d samples; recover %s on %d)\n",
			req, 100*f, 100*r,
			rep.Unlearn.WallTime.Round(time.Millisecond), rep.Unlearn.DataSize,
			rep.Recover.WallTime.Round(time.Millisecond), rep.Recover.DataSize)
		if *relearn {
			if _, err := sys.Relearn(req); err != nil {
				return fmt.Errorf("relearn %v: %w", req, err)
			}
			f, r = setup.SplitAccuracy(sys.Model, req)
			cfg.Telemetry.RecordSplitAccuracy(f, r)
			fmt.Printf("relearned %v: F-Set %.2f%%, R-Set %.2f%%\n", req, 100*f, 100*r)
		}
	}

	if *saveState != "" {
		f, err := os.Create(*saveState)
		if err != nil {
			return err
		}
		if err := sys.SaveState(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("state saved to %s\n", *saveState)
	}

	if *modelOut != "" {
		f, err := os.Create(*modelOut)
		if err != nil {
			return err
		}
		if _, err := sys.Model.WriteTo(f); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("model written to %s\n", *modelOut)
	}

	if *ledgerDir != "" {
		m := telemetry.BuildManifest(cfg.Telemetry, "quickdrop", *seed, map[string]string{
			"dataset": *dataset,
			"clients": fmt.Sprint(*clients),
			"alpha":   fmt.Sprint(*alpha),
			"scale":   *scaleName,
		})
		path, err := telemetry.WriteManifest(*ledgerDir, m)
		if err != nil {
			return err
		}
		fmt.Printf("ledger: manifest written to %s\n", path)
	}

	if *eventsOut != "" {
		cfg.Telemetry.Close()
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		log := telemetry.NewEventLog(f)
		log.EmitSpans(tracer)
		if err := log.Err(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("telemetry events written to %s\n", *eventsOut)
	}
	return nil
}
